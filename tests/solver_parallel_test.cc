// Tests for the parallel branch-and-bound search (MilpOptions::num_threads).
//
// The contract under test: any worker count yields an incumbent within the
// configured gap of the same optimum; num_threads = 1 is bit-for-bit
// deterministic; and limits (time) are respected by the worker pool. The
// randomized stress case hammers the shared queue / incumbent locks and is
// the case the CI ThreadSanitizer build runs.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/milp.h"

namespace tetrisched {
namespace {

// The STRL compiler's demand/supply shape (see solver_stress_test.cc):
// P_j == 2 I_j per job plus one shared supply row. Optimum schedules
// floor(supply / 2) jobs.
MilpModel MakeDemandSupplyModel(int jobs, double supply) {
  MilpModel model;
  std::vector<LinTerm> supply_row;
  for (int j = 0; j < jobs; ++j) {
    VarId indicator = model.AddBinaryVar();
    VarId count = model.AddIntegerVar(0.0, 2.0);
    model.AddObjectiveTerm(indicator, 1.0);
    model.AddConstraint({{count, 1.0}, {indicator, -2.0}},
                        ConstraintSense::kEqual, 0.0);
    supply_row.push_back({count, 1.0});
  }
  model.AddConstraint(std::move(supply_row), ConstraintSense::kLessEqual,
                      supply);
  return model;
}

// Random binary packing instances in the style of solver_test's
// MilpRandomTest generator, sized to force a real tree search.
MilpModel MakeRandomPackingModel(Rng& rng, int num_vars, int num_cons) {
  MilpModel model;
  for (int v = 0; v < num_vars; ++v) {
    model.AddBinaryVar("b" + std::to_string(v));
    model.AddObjectiveTerm(v, rng.UniformReal(-5.0, 10.0));
  }
  for (int c = 0; c < num_cons; ++c) {
    std::vector<LinTerm> terms;
    for (int v = 0; v < num_vars; ++v) {
      if (rng.Bernoulli(0.6)) {
        terms.push_back({v, rng.UniformReal(-3.0, 5.0)});
      }
    }
    if (!terms.empty()) {
      model.AddConstraint(std::move(terms), ConstraintSense::kLessEqual,
                          rng.UniformReal(0.0, 6.0));
    }
  }
  return model;
}

TEST(SolverParallelTest, ExactObjectiveMatchesAcrossThreadCounts) {
  MilpModel model = MakeDemandSupplyModel(40, 26.0);
  MilpOptions options;
  options.rel_gap = 0.0;
  options.time_limit_seconds = 30.0;

  double reference = 0.0;
  for (int threads : {1, 2, 8}) {
    options.num_threads = threads;
    MilpResult result = MilpSolver(model, options).Solve();
    ASSERT_TRUE(result.HasSolution()) << "threads=" << threads;
    EXPECT_EQ(result.threads_used, threads);
    EXPECT_TRUE(model.IsFeasible(result.values)) << "threads=" << threads;
    if (threads == 1) {
      reference = result.objective;
      EXPECT_NEAR(reference, 13.0, 1e-6);  // floor(26 / 2)
    } else {
      // rel_gap = 0: every worker count must prove the same optimum.
      EXPECT_NEAR(result.objective, reference, 1e-6)
          << "threads=" << threads;
    }
  }
}

TEST(SolverParallelTest, ObjectivesAgreeWithinRelGap) {
  MilpModel model = MakeDemandSupplyModel(48, 30.0);
  MilpOptions options;
  options.rel_gap = 0.10;
  options.time_limit_seconds = 30.0;

  options.num_threads = 1;
  MilpResult single = MilpSolver(model, options).Solve();
  ASSERT_TRUE(single.HasSolution());

  for (int threads : {2, 8}) {
    options.num_threads = threads;
    MilpResult parallel = MilpSolver(model, options).Solve();
    ASSERT_TRUE(parallel.HasSolution()) << "threads=" << threads;
    // Both incumbents are proven within rel_gap of the same optimum, so they
    // can differ by at most rel_gap * the larger objective.
    double tolerance =
        options.rel_gap *
            std::max(std::abs(single.objective), std::abs(parallel.objective)) +
        1e-6;
    EXPECT_NEAR(parallel.objective, single.objective, tolerance)
        << "threads=" << threads;
  }
}

TEST(SolverParallelTest, RespectsTimeLimit) {
  // Symmetric knapsack: 40 identical items, odd capacity. The LP bound stays
  // at 10.5 while the integer optimum is 10, so a zero-gap search can never
  // close and must run until the clock stops it.
  MilpModel model;
  std::vector<LinTerm> row;
  for (int i = 0; i < 40; ++i) {
    VarId v = model.AddBinaryVar();
    model.AddObjectiveTerm(v, 1.0);
    row.push_back({v, 2.0});
  }
  model.AddConstraint(std::move(row), ConstraintSense::kLessEqual, 21.0);

  MilpOptions options;
  options.rel_gap = 0.0;
  options.abs_gap = 0.0;
  options.max_nodes = 100000000;
  options.stall_node_limit = 0;
  options.enable_presolve = false;
  options.time_limit_seconds = 0.3;
  options.num_threads = 4;

  MilpResult result = MilpSolver(model, options).Solve();
  // The zero incumbent guarantees a solution even on timeout...
  ASSERT_TRUE(result.HasSolution());
  // ...and the pool must notice the deadline within one LP solve per worker.
  EXPECT_LE(result.solve_seconds, 2.0);
}

TEST(SolverParallelTest, SingleThreadIsDeterministic) {
  MilpModel model = MakeDemandSupplyModel(32, 18.0);
  MilpOptions options;
  options.rel_gap = 0.0;
  options.num_threads = 1;

  MilpResult first = MilpSolver(model, options).Solve();
  MilpResult second = MilpSolver(model, options).Solve();
  ASSERT_TRUE(first.HasSolution());
  ASSERT_TRUE(second.HasSolution());
  EXPECT_EQ(first.nodes, second.nodes);
  EXPECT_EQ(first.lp_iterations, second.lp_iterations);
  EXPECT_EQ(first.objective, second.objective);
  EXPECT_EQ(first.best_bound, second.best_bound);
  EXPECT_EQ(first.values, second.values);
}

// ThreadSanitizer stress: many small randomized models, each solved with a
// worker pool wider than the machine, checked against the single-threaded
// answer. Models are small enough that TSan's ~10x slowdown stays cheap.
TEST(SolverParallelTest, StressRandomizedModelsMatchSingleThread) {
  for (int seed = 0; seed < 12; ++seed) {
    Rng rng(7000 + seed);
    const int num_vars = 10 + static_cast<int>(rng.UniformInt(0, 5));
    const int num_cons = 4 + static_cast<int>(rng.UniformInt(0, 5));
    MilpModel model = MakeRandomPackingModel(rng, num_vars, num_cons);

    MilpOptions options;
    options.rel_gap = 0.0;
    options.time_limit_seconds = 20.0;

    options.num_threads = 1;
    MilpResult single = MilpSolver(model, options).Solve();
    options.num_threads = 8;
    MilpResult parallel = MilpSolver(model, options).Solve();

    ASSERT_TRUE(single.HasSolution()) << "seed " << seed;
    ASSERT_TRUE(parallel.HasSolution()) << "seed " << seed;
    EXPECT_EQ(single.status, MilpStatus::kOptimal) << "seed " << seed;
    EXPECT_EQ(parallel.status, MilpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(parallel.objective, single.objective, 1e-6)
        << "seed " << seed;
    EXPECT_TRUE(model.IsFeasible(parallel.values)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tetrisched
