// Tests for the lossy control plane (DESIGN.md §15): heartbeat failure
// detection (timeout and phi-accrual), the seeded lossy message channel,
// epoch fencing and reconciliation of double-placed gangs, stale-view
// scheduling, oracle-mode byte-identity, and crash recovery of the fence
// epoch table.

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/core/scheduler.h"
#include "src/persist/journal.h"
#include "src/persist/persist.h"
#include "src/persist/records.h"
#include "src/sim/comms.h"
#include "src/sim/faults.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/workload/workload.h"

namespace tetrisched {
namespace {

Job MakeJob(JobId id, JobType type, int k, SimDuration runtime,
            SimTime deadline, SloClass slo_class, SimTime submit = 0) {
  Job job;
  job.id = id;
  job.type = type;
  job.wants_reservation = slo_class != SloClass::kBestEffort;
  job.k = k;
  job.submit = submit;
  job.actual_runtime = runtime;
  job.slowdown = type == JobType::kUnconstrained ? 1.0 : 2.0;
  job.deadline = deadline;
  job.slo_class = slo_class;
  return job;
}

TetriSchedConfig ExactConfig(TetriSchedConfig base = TetriSchedConfig::Full()) {
  base.milp.rel_gap = 0.0;
  return base;
}

CommsParams DetectorParamsOnly(SimDuration suspect_timeout) {
  CommsParams params;
  params.enabled = true;
  params.detector.suspect_timeout = suspect_timeout;
  return params;
}

// --- Failure-detector state machine ------------------------------------------

TEST(DetectorFsmTest, TimeoutDrivesSuspectDeadAndRecovery) {
  Cluster cluster = MakeUniformCluster(1, 4, 0);
  ControlPlane comms(cluster, DetectorParamsOnly(4));  // dead at 4x4 = 16
  ASSERT_TRUE(comms.active());

  comms.NodeDown(0, 10);  // heartbeats 1..10 delivered, then silence
  ControlPlane::Verdict verdict = comms.Evaluate(12, 1);
  EXPECT_TRUE(verdict.newly_suspect.empty());  // 2 s silence < 4 s timeout
  EXPECT_EQ(comms.belief(0), NodeBeliefState::kAlive);

  verdict = comms.Evaluate(16, 2);  // 6 s silence
  ASSERT_EQ(verdict.newly_suspect, std::vector<NodeId>{0});
  EXPECT_EQ(comms.belief(0), NodeBeliefState::kSuspect);
  EXPECT_TRUE(comms.BelievedDown(0));
  EXPECT_EQ(comms.counters().suspicions, 1);
  EXPECT_EQ(comms.counters().false_suspicions, 0);
  ASSERT_EQ(comms.detection_latencies().size(), 1u);
  EXPECT_DOUBLE_EQ(comms.detection_latencies()[0], 6.0);  // failed 10, seen 16

  verdict = comms.Evaluate(28, 3);  // 18 s silence > dead timeout
  ASSERT_EQ(verdict.newly_dead, std::vector<NodeId>{0});
  EXPECT_EQ(comms.belief(0), NodeBeliefState::kDead);
  EXPECT_EQ(comms.counters().dead_declared, 1);

  comms.NodeUp(0, 30);
  verdict = comms.Evaluate(32, 4);  // beats 31, 32 arrive
  ASSERT_EQ(verdict.recovered, std::vector<NodeId>{0});
  ASSERT_EQ(verdict.rebooted, std::vector<NodeId>{0});  // boot 2 > seen 1
  EXPECT_EQ(comms.belief(0), NodeBeliefState::kAlive);
  EXPECT_FALSE(comms.BelievedDown(0));
}

TEST(DetectorFsmTest, FalseSuspicionOnPartitionedButLiveNode) {
  Cluster cluster = MakeUniformCluster(1, 4, 0);
  CommsParams params = DetectorParamsOnly(4);
  params.partitions = {{10, 100, 0, -1}};  // node 0 unreachable from t = 10
  ControlPlane comms(cluster, params);

  ControlPlane::Verdict verdict = comms.Evaluate(20, 1);
  ASSERT_EQ(verdict.newly_suspect, std::vector<NodeId>{0});
  EXPECT_EQ(comms.counters().false_suspicions, 1);
  EXPECT_TRUE(comms.detection_latencies().empty());  // no real failure
  EXPECT_FALSE(comms.LinkUp(0, 20));
  EXPECT_TRUE(comms.LinkUp(1, 20));
}

TEST(DetectorFsmTest, PhiAccrualFloorsOnSmoothedGap) {
  Cluster cluster = MakeUniformCluster(1, 2, 0);
  CommsParams params = DetectorParamsOnly(2);
  params.detector.phi_threshold = 6.0;  // EMA gap stays 1 s -> threshold 6 s
  ControlPlane comms(cluster, params);

  comms.NodeDown(0, 10);
  ControlPlane::Verdict verdict = comms.Evaluate(14, 1);
  // A fixed 2 s timeout would already suspect (4 s silence); phi holds off.
  EXPECT_TRUE(verdict.newly_suspect.empty());
  verdict = comms.Evaluate(17, 2);  // 7 s silence > 6 s phi threshold
  ASSERT_EQ(verdict.newly_suspect, std::vector<NodeId>{0});
}

TEST(DetectorFsmTest, RebootWithinTimeoutIsStillDetected) {
  Cluster cluster = MakeUniformCluster(1, 4, 0);
  ControlPlane comms(cluster, DetectorParamsOnly(30));
  comms.NodeDown(0, 10);
  comms.NodeUp(0, 12);  // outage far shorter than the suspect timeout
  ControlPlane::Verdict verdict = comms.Evaluate(16, 1);
  EXPECT_TRUE(verdict.newly_suspect.empty());  // never even suspected
  ASSERT_EQ(verdict.rebooted, std::vector<NodeId>{0});  // boot count jumped
  EXPECT_EQ(comms.boot_count(0), 2u);
}

// --- Command channel and message faults --------------------------------------

TEST(CommandChannelTest, DropsOnDownNodePartitionAndLossDraw) {
  Cluster cluster = MakeUniformCluster(1, 4, 0);
  CommsParams params = DetectorParamsOnly(4);
  params.partitions = {{0, 100, 1, -1}};
  params.message.drop_prob = 1.0;
  ControlPlane comms(cluster, params);

  comms.NodeDown(0, 5);
  EXPECT_FALSE(comms.DeliverCommand(0, 6));  // node down
  EXPECT_FALSE(comms.DeliverCommand(1, 6));  // link partitioned
  EXPECT_FALSE(comms.DeliverCommand(2, 6));  // channel drops everything
  EXPECT_EQ(comms.counters().commands_dropped, 3);

  CommsParams clean = DetectorParamsOnly(4);
  clean.message.dup_prob = 1.0;
  ControlPlane dup(cluster, clean);
  EXPECT_TRUE(dup.DeliverCommand(2, 6));  // delivered, duplicate rejected
  EXPECT_EQ(dup.counters().stale_command_rejects, 1);
}

TEST(CommandChannelTest, FaultStreamsAreIndependent) {
  // Enabling duplication must not shift the drop draws of an otherwise
  // identical run (separate counter-based streams per fault class).
  Cluster cluster = MakeUniformCluster(1, 2, 0);
  CommsParams a = DetectorParamsOnly(4);
  a.message.drop_prob = 0.3;
  CommsParams b = a;
  b.message.dup_prob = 0.9;

  ControlPlane ca(cluster, a);
  ControlPlane cb(cluster, b);
  ca.Evaluate(200, 1);
  cb.Evaluate(200, 1);
  EXPECT_EQ(ca.counters().heartbeats_sent, cb.counters().heartbeats_sent);
  EXPECT_EQ(ca.counters().heartbeats_dropped,
            cb.counters().heartbeats_dropped);
  EXPECT_GT(cb.counters().heartbeats_duplicated, 0);
  EXPECT_EQ(ca.counters().heartbeats_duplicated, 0);
}

TEST(CommandChannelTest, OracleParamsDeactivateTheModel) {
  Cluster cluster = MakeUniformCluster(1, 2, 0);
  CommsParams params;  // disabled
  EXPECT_TRUE(params.oracle());
  params.enabled = true;  // enabled but faultless + zero timeout
  EXPECT_TRUE(params.oracle());
  ControlPlane comms(cluster, params);
  EXPECT_FALSE(comms.active());
  EXPECT_TRUE(comms.DeliverCommand(0, 5));  // inactive channel is perfect
  EXPECT_TRUE(comms.Evaluate(100, 1).newly_suspect.empty());

  params.detector.suspect_timeout = 8;
  EXPECT_FALSE(params.oracle());
}

// --- Epoch table durability (records codec) ----------------------------------

TEST(EpochRecordsTest, EpochBumpEventRoundTripsAndMaxMerges) {
  DurableEvent bump;
  bump.kind = DurableEventKind::kEpochBump;
  bump.time = 20;
  bump.node = 3;
  bump.epoch = 7;
  DurableEvent decoded;
  ASSERT_TRUE(DecodeEvent(EncodeEvent(bump), &decoded));
  EXPECT_EQ(decoded, bump);

  RecoveredState state;
  ApplyEvent(state, bump);
  EXPECT_EQ(state.epochs.at(3), 7u);
  bump.epoch = 5;  // stale bump must never regress the table
  ApplyEvent(state, bump);
  EXPECT_EQ(state.epochs.at(3), 7u);
}

TEST(EpochRecordsTest, SnapshotCarriesEpochTable) {
  RecoveredState state;
  state.checkpoint_time = 44;
  state.epochs = {{0, 2}, {5, 9}};
  RecoveredState decoded;
  ASSERT_TRUE(DecodeSnapshot(EncodeSnapshot(state), &decoded));
  EXPECT_EQ(decoded, state);
}

// --- Rate-limited logging ----------------------------------------------------

TEST(LogRateLimiterTest, EmitsOncePerKeyPerWindowAndCountsSuppressed) {
  LogRateLimiter limiter(/*every_n_ticks=*/16);
  int64_t suppressed = -1;
  EXPECT_TRUE(limiter.ShouldLog(0, 0, &suppressed));
  EXPECT_EQ(suppressed, 0);
  for (int64_t tick = 1; tick < 16; ++tick) {
    EXPECT_FALSE(limiter.ShouldLog(0, tick, &suppressed));
  }
  EXPECT_TRUE(limiter.ShouldLog(1, 3, &suppressed));  // independent key
  EXPECT_EQ(suppressed, 0);
  EXPECT_TRUE(limiter.ShouldLog(0, 16, &suppressed));
  EXPECT_EQ(suppressed, 15);
  EXPECT_EQ(LogRateLimiter::SuppressedSuffix(15), " (+15 suppressed)");
  EXPECT_EQ(LogRateLimiter::SuppressedSuffix(0), "");
}

// --- Oracle-mode byte-identity -----------------------------------------------

// Zeroes the wall-clock latency column of `cycle` rows (the one
// nondeterministic field in a trace) so CSVs compare on schedule content.
std::string MaskCycleLatency(const std::string& csv) {
  std::string out;
  size_t start = 0;
  while (start < csv.size()) {
    size_t end = csv.find('\n', start);
    if (end == std::string::npos) {
      end = csv.size();
    }
    std::string line = csv.substr(start, end - start);
    if (line.find(",cycle,") != std::string::npos) {
      line = line.substr(0, line.rfind(',') + 1) + "x";
    }
    out += line;
    out += '\n';
    start = end + 1;
  }
  return out;
}

TEST(OracleModeTest, EnabledOracleCommsIsByteIdenticalToDisabled) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  auto run_once = [&](bool enable_comms) {
    std::vector<Job> jobs{
        MakeJob(1, JobType::kUnconstrained, 4, 60, 400, SloClass::kSloAccepted),
        MakeJob(2, JobType::kGpu, 2, 40, 400, SloClass::kSloUnreserved, 4),
        MakeJob(3, JobType::kUnconstrained, 8, 30, kTimeNever,
                SloClass::kBestEffort, 8),
    };
    SimConfig config;
    config.node_failures = {{20, 0, 40}};
    if (enable_comms) {
      config.comms.enabled = true;  // all-zero faults: oracle mode
    }
    SimTrace trace;
    config.trace = &trace;
    TetriSchedConfig sched_config = ExactConfig();
    sched_config.milp.num_threads = 1;
    sched_config.milp.time_limit_seconds = 1e9;
    TetriScheduler scheduler(cluster, sched_config);
    Simulator sim(cluster, scheduler, jobs, config);
    sim.Run();
    return MaskCycleLatency(trace.ToCsv());
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

// --- False suspicion: fencing and adoption -----------------------------------

TEST(FencingTest, FalseSuspicionFencesExactlyTheStalePlacement) {
  // One k=8 gang spans the cluster; node 0's control-plane link drops while
  // the node stays healthy. The detector falsely suspects it, the gang is
  // recalled (7 members killed, node 0's copy orphaned + fenced), and on
  // heal the reconciliation kills exactly that one stale task.
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{MakeJob(1, JobType::kUnconstrained, 8, 100, kTimeNever,
                                SloClass::kBestEffort)};
  SimConfig config;
  config.comms = DetectorParamsOnly(8);
  config.comms.partitions = {{10, 60, 0, -1}};
  TetriScheduler scheduler(cluster, ExactConfig());
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();

  EXPECT_GE(metrics.suspicions, 1);
  EXPECT_GE(metrics.false_suspicions, 1);
  EXPECT_EQ(metrics.failure_kills, 1);
  EXPECT_EQ(metrics.fenced_tasks, 1);  // exactly node 0's stale copy
  EXPECT_EQ(metrics.orphans_adopted, 0);
  EXPECT_EQ(metrics.validator_violations, 0);
  EXPECT_EQ(metrics.belief_invariant_violations, 0);
  ASSERT_TRUE(metrics.outcomes[0].completed);
  EXPECT_EQ(metrics.outcomes[0].retries, 1);
}

TEST(FencingTest, IntactOrphanIsAdoptedBackWithoutRestart) {
  // The whole rack partitions away: every member of the gang becomes
  // unreachable at once, so the orphaned copy stays intact. On heal the
  // survivor keeps its slot — the gang is adopted back and completes as if
  // never interrupted.
  Cluster cluster = MakeUniformCluster(1, 4, 0);
  std::vector<Job> jobs{MakeJob(1, JobType::kUnconstrained, 4, 100, kTimeNever,
                                SloClass::kBestEffort)};
  SimConfig config;
  config.comms = DetectorParamsOnly(8);
  config.comms.partitions = {{10, 40, -1, 0}};  // rack 0
  TetriScheduler scheduler(cluster, ExactConfig());
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();

  EXPECT_EQ(metrics.failure_kills, 1);  // recall still charges a kill
  EXPECT_EQ(metrics.orphans_adopted, 1);
  EXPECT_EQ(metrics.fenced_tasks, 0);
  EXPECT_EQ(metrics.belief_invariant_violations, 0);
  EXPECT_EQ(metrics.validator_violations, 0);
  ASSERT_TRUE(metrics.outcomes[0].completed);
  EXPECT_EQ(metrics.outcomes[0].retries, 1);
  // Survivor kept the slot: completion is the original end time, with no
  // restart of the 100 s runtime.
  EXPECT_EQ(metrics.outcomes[0].completion,
            metrics.outcomes[0].start_time + 100);
  EXPECT_EQ(metrics.recovery_latency.count(), 1u);
}

TEST(FencingTest, SilentRebootRecallsTheBrokenGang) {
  // Node 0 dies and returns well inside the suspect timeout; the detector
  // never suspects it, but the bumped boot count in resumed heartbeats
  // betrays the reboot and the broken gang is recalled.
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{MakeJob(1, JobType::kUnconstrained, 8, 100, kTimeNever,
                                SloClass::kBestEffort)};
  SimConfig config;
  config.comms = DetectorParamsOnly(30);
  config.node_failures = {{10, 0, 12}};
  TetriScheduler scheduler(cluster, ExactConfig());
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();

  EXPECT_EQ(metrics.suspicions, 0);
  EXPECT_EQ(metrics.failure_kills, 1);
  EXPECT_EQ(metrics.belief_invariant_violations, 0);
  EXPECT_EQ(metrics.validator_violations, 0);
  ASSERT_TRUE(metrics.outcomes[0].completed);
  EXPECT_EQ(metrics.outcomes[0].retries, 1);
}

// --- Crash recovery of the epoch table ---------------------------------------

TEST(FencingTest, CrashBetweenSuspicionAndReconciliationPreservesEpochs) {
  // The fence epoch is journaled (kEpochBump) before the in-memory bump; a
  // scheduler crash after the suspicion recall but before the partition
  // heals must recover the table, fence the stale copy on heal, and leave
  // the invariants intact.
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{MakeJob(1, JobType::kUnconstrained, 8, 100, kTimeNever,
                                SloClass::kBestEffort)};
  PersistenceManager persist(std::make_unique<MemoryJournalStorage>());
  SimConfig config;
  config.persist = &persist;
  config.comms = DetectorParamsOnly(8);
  config.comms.partitions = {{10, 60, 0, -1}};
  config.scheduler_crashes = {{24, CrashPhase::kBeforeCycle}};
  TetriScheduler scheduler(cluster, ExactConfig());
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();

  EXPECT_EQ(metrics.scheduler_crashes, 1);
  EXPECT_EQ(metrics.recoveries, 1);
  EXPECT_EQ(metrics.fenced_tasks, 1);
  EXPECT_EQ(metrics.belief_invariant_violations, 0);
  ASSERT_TRUE(metrics.outcomes[0].completed);

  // The journaled epoch table survived the crash: node 0 was fenced once.
  RecoveryResult recovered = persist.Recover();
  ASSERT_EQ(recovered.state.epochs.count(0), 1u);
  EXPECT_GE(recovered.state.epochs.at(0), 1u);
}

// --- Generated comms faults (stochastic model) -------------------------------

TEST(CommsScheduleTest, PartitionsAreSeedStableAndDoNotPerturbChurn) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  FaultModelParams params;
  params.seed = 9;
  params.horizon = 4000;
  params.mtbf = 300.0;
  params.mttr = 40.0;
  params.suspect_timeout = 8;
  params.partition_mtbf = 400.0;
  params.partition_mttr = 25.0;
  params.rack_partition_prob = 0.3;

  FaultSchedule a = GenerateFaultSchedule(cluster, params);
  FaultSchedule b = GenerateFaultSchedule(cluster, params);
  EXPECT_TRUE(a.comms.enabled);
  EXPECT_FALSE(a.comms.oracle());
  EXPECT_FALSE(a.comms.partitions.empty());
  EXPECT_EQ(a.comms.partitions, b.comms.partitions);

  // Adding partitions must not shift the node-churn substreams.
  FaultModelParams no_parts = params;
  no_parts.partition_mtbf = 0.0;
  FaultSchedule c = GenerateFaultSchedule(cluster, no_parts);
  EXPECT_EQ(a.failures, c.failures);
  EXPECT_TRUE(c.comms.partitions.empty());
}

// --- End-to-end: determinism and safety under loss ---------------------------

SimMetrics RunLossyChurn(uint64_t fault_seed, double drop_prob) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  WorkloadParams workload;
  workload.kind = WorkloadKind::kGsMix;
  workload.seed = 11;
  workload.num_jobs = 12;
  std::vector<Job> jobs = GenerateWorkload(cluster, workload);
  ApplyAdmission(cluster, jobs);

  FaultModelParams faults;
  faults.seed = fault_seed;
  faults.horizon = 3000;
  faults.mtbf = 300.0;
  faults.mttr = 30.0;
  faults.msg_drop_prob = drop_prob;
  faults.msg_dup_prob = 0.05;
  faults.msg_delay = 1;
  faults.msg_delay_jitter = 2;
  faults.msg_reorder_prob = 0.05;
  faults.suspect_timeout = 8;
  faults.partition_mtbf = 600.0;
  faults.partition_mttr = 20.0;
  faults.rack_partition_prob = 0.3;
  FaultSchedule schedule = GenerateFaultSchedule(cluster, faults);

  SimConfig config;
  config.node_failures = schedule.failures;
  config.stragglers = schedule.stragglers;
  config.comms = schedule.comms;
  TetriSchedConfig sched_config = ExactConfig();
  sched_config.milp.num_threads = 1;
  sched_config.milp.time_limit_seconds = 1e9;
  TetriScheduler scheduler(cluster, sched_config);
  Simulator sim(cluster, scheduler, jobs, config);
  return sim.Run();
}

TEST(LossyDeterminismTest, SameSeedSameSchedule) {
  SimMetrics a = RunLossyChurn(5, 0.1);
  SimMetrics b = RunLossyChurn(5, 0.1);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.failure_kills, b.failure_kills);
  EXPECT_EQ(a.suspicions, b.suspicions);
  EXPECT_EQ(a.false_suspicions, b.false_suspicions);
  EXPECT_EQ(a.fenced_tasks, b.fenced_tasks);
  EXPECT_EQ(a.orphans_adopted, b.orphans_adopted);
  EXPECT_EQ(a.stale_placement_bounces, b.stale_placement_bounces);
  EXPECT_EQ(a.heartbeats_dropped, b.heartbeats_dropped);
  EXPECT_EQ(a.commands_dropped, b.commands_dropped);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].completed, b.outcomes[i].completed);
    EXPECT_EQ(a.outcomes[i].completion, b.outcomes[i].completion);
    EXPECT_EQ(a.outcomes[i].retries, b.outcomes[i].retries);
  }
}

TEST(LossyInvariantTest, LossAndChurnNeverLoseOrDoubleOccupy) {
  // The §15 invariant at every loss rate up to 20%: no node is ever owned
  // by two copies or leaked, and every gang either completes or is
  // explicitly dropped — never silently lost.
  for (double drop : {0.05, 0.2}) {
    SimMetrics metrics = RunLossyChurn(7, drop);
    EXPECT_EQ(metrics.belief_invariant_violations, 0) << "drop " << drop;
    EXPECT_EQ(metrics.validator_violations, 0) << "drop " << drop;
    for (const JobOutcome& outcome : metrics.outcomes) {
      EXPECT_TRUE(outcome.completed || outcome.dropped)
          << "job " << outcome.id << " lost at drop " << drop;
    }
    EXPECT_GT(metrics.heartbeats_dropped, 0) << "drop " << drop;
  }
}

}  // namespace
}  // namespace tetrisched
