// Tests for the simulation trace recorder and its simulator integration.

#include <gtest/gtest.h>

#include "src/baseline/capacity_scheduler.h"
#include "src/core/scheduler.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"

namespace tetrisched {
namespace {

Job MakeJob(JobId id, int k, SimDuration runtime, SimTime submit,
            SimTime deadline = kTimeNever, bool slo = false) {
  Job job;
  job.id = id;
  job.k = k;
  job.actual_runtime = runtime;
  job.submit = submit;
  job.deadline = deadline;
  job.wants_reservation = slo;
  return job;
}

TEST(TraceTest, RecordsAndCounts) {
  SimTrace trace;
  trace.Record({0, TraceEventKind::kSubmit, 1});
  trace.Record({4, TraceEventKind::kStart, 1, -1, 2});
  trace.Record({10, TraceEventKind::kComplete, 1, -1, 2});
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kSubmit), 1);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kPreempt), 0);
}

TEST(TraceTest, CsvFormat) {
  SimTrace trace;
  trace.Record({4, TraceEventKind::kStart, 7, -1, 3});
  std::string csv = trace.ToCsv();
  EXPECT_NE(csv.find("time,kind,job,node,count,value"), std::string::npos);
  EXPECT_NE(csv.find("4,start,7,-1,3,0"), std::string::npos);
}

TEST(TraceTest, TimelineReflectsLoad) {
  SimTrace trace;
  // 4-node cluster fully busy for the first half, idle after.
  trace.Record({0, TraceEventKind::kStart, 1, -1, 4});
  trace.Record({50, TraceEventKind::kComplete, 1, -1, 4});
  trace.Record({100, TraceEventKind::kCycle, -1, -1, 0, 0.0});
  std::string timeline = trace.RenderUtilizationTimeline(4, 10);
  // First buckets saturated ('#'), later buckets idle ('.').
  EXPECT_NE(timeline.find('#'), std::string::npos);
  EXPECT_NE(timeline.find('.'), std::string::npos);
  size_t open = timeline.find('[');
  ASSERT_NE(open, std::string::npos);
  EXPECT_EQ(timeline[open + 1], '#');
  EXPECT_EQ(timeline[timeline.find(']') - 1], '.');
}

TEST(TraceTest, EmptyTraceIsSafe) {
  SimTrace trace;
  EXPECT_EQ(trace.RenderUtilizationTimeline(4), "(empty trace)");
  EXPECT_NE(trace.ToCsv().find("time,kind"), std::string::npos);
}

TEST(TraceTest, CsvRoundTripsChurnEventKinds) {
  SimTrace trace;
  // kFallback carries the degradation-ladder rung in `count`.
  trace.Record({8, TraceEventKind::kFallback, -1, -1, 1});
  trace.Record({12, TraceEventKind::kFallback, -1, -1, 2});
  trace.Record({16, TraceEventKind::kPlanReject, 9});
  trace.Record({20, TraceEventKind::kNodeSlow, -1, 3, 0, 2.5});
  trace.Record({40, TraceEventKind::kNodeSlowRecover, -1, 3});
  std::string csv = trace.ToCsv();
  EXPECT_NE(csv.find("8,fallback,-1,-1,1,0"), std::string::npos);
  EXPECT_NE(csv.find("12,fallback,-1,-1,2,0"), std::string::npos);
  EXPECT_NE(csv.find("16,plan-reject,9,-1,0,0"), std::string::npos);
  EXPECT_NE(csv.find("20,node-slow,-1,3,0,2.5"), std::string::npos);
  EXPECT_NE(csv.find("40,node-slow-recover,-1,3,0,0"), std::string::npos);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kFallback), 2);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kPlanReject), 1);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kNodeSlow), 1);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kNodeSlowRecover), 1);
}

TEST(TraceIntegrationTest, SimulatorRecordsLifecycle) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{MakeJob(1, 2, 50, 0), MakeJob(2, 2, 30, 10)};
  ApplyAdmission(cluster, jobs);
  TetriSchedConfig config = TetriSchedConfig::Full();
  config.milp.rel_gap = 0.0;
  TetriScheduler scheduler(cluster, config);
  SimTrace trace;
  SimConfig sim_config;
  sim_config.trace = &trace;
  Simulator sim(cluster, scheduler, jobs, sim_config);
  sim.Run();

  EXPECT_EQ(trace.CountKind(TraceEventKind::kSubmit), 2);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kStart), 2);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kComplete), 2);
  EXPECT_GT(trace.CountKind(TraceEventKind::kCycle), 0);

  // Events are time ordered.
  SimTime prev = 0;
  for (const TraceEvent& event : trace.events()) {
    EXPECT_GE(event.time, prev);
    prev = event.time;
  }
}

TEST(TraceIntegrationTest, FallbackEventCarriesLadderRung) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{MakeJob(1, 2, 50, 0), MakeJob(2, 2, 30, 10)};
  ApplyAdmission(cluster, jobs);
  TetriSchedConfig config = TetriSchedConfig::Full();
  config.milp.time_limit_seconds = 0.0;  // force the greedy fallback rung
  TetriScheduler scheduler(cluster, config);
  SimTrace trace;
  SimConfig sim_config;
  sim_config.trace = &trace;
  Simulator sim(cluster, scheduler, jobs, sim_config);
  sim.Run();

  int fallbacks = 0;
  for (const TraceEvent& event : trace.events()) {
    if (event.kind != TraceEventKind::kFallback) {
      continue;
    }
    ++fallbacks;
    // Rung 1 = greedy first-fit, rung 2 = skip; 0 would mean the MILP
    // planned the cycle, which a zero budget rules out.
    EXPECT_GE(event.count, 1);
    EXPECT_LE(event.count, 2);
  }
  EXPECT_GT(fallbacks, 0);
}

TEST(TraceIntegrationTest, RecordsPreemptionsAndFailures) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{
      MakeJob(1, 8, 200, 0),                      // BE hog
      MakeJob(2, 8, 50, 20, /*deadline=*/300, true)};  // reserved SLO
  ApplyAdmission(cluster, jobs);
  CapacityScheduler scheduler(cluster);
  SimTrace trace;
  SimConfig sim_config;
  sim_config.trace = &trace;
  sim_config.node_failures = {{100, 0, 150}};
  Simulator sim(cluster, scheduler, jobs, sim_config);
  sim.Run();

  EXPECT_GT(trace.CountKind(TraceEventKind::kPreempt), 0);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kNodeFail), 1);
  EXPECT_EQ(trace.CountKind(TraceEventKind::kNodeRecover), 1);
}

}  // namespace
}  // namespace tetrisched
