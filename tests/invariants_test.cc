// Cross-policy end-to-end invariants: random mixed workloads, optional fault
// injection, every scheduler stack. Whatever the policy decides, the
// simulated cluster must never oversubscribe, every job must terminate
// (complete or be dropped), and metrics must be internally consistent.

#include <gtest/gtest.h>

#include "src/baseline/capacity_scheduler.h"
#include "src/baseline/delay_scheduler.h"
#include "src/core/scheduler.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/workload/workload.h"

namespace tetrisched {
namespace {

struct Scenario {
  int seed;
  WorkloadKind kind;
  int policy;  // 0 full, 1 NH, 2 NG, 3 NP, 4 CS, 5 delay
  bool inject_failures;
};

class InvariantTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(InvariantTest, TerminationAndConsistency) {
  const Scenario& scenario = GetParam();
  Cluster cluster = MakeUniformCluster(4, 4, 2);

  WorkloadParams params;
  params.kind = scenario.kind;
  params.num_jobs = 25;
  params.seed = scenario.seed;
  params.estimate_error = (scenario.seed % 5 - 2) * 0.25;  // -50%..+50%
  params.arrivals =
      scenario.seed % 2 == 0 ? ArrivalPattern::kPoisson : ArrivalPattern::kBursty;
  std::vector<Job> jobs = GenerateWorkload(cluster, params);
  ApplyAdmission(cluster, jobs);

  std::unique_ptr<SchedulerPolicy> policy;
  switch (scenario.policy) {
    case 0:
      policy = std::make_unique<TetriScheduler>(cluster,
                                                TetriSchedConfig::Full());
      break;
    case 1:
      policy = std::make_unique<TetriScheduler>(
          cluster, TetriSchedConfig::NoHeterogeneity());
      break;
    case 2:
      policy = std::make_unique<TetriScheduler>(cluster,
                                                TetriSchedConfig::NoGlobal());
      break;
    case 3:
      policy = std::make_unique<TetriScheduler>(
          cluster, TetriSchedConfig::NoPlanAhead());
      break;
    case 4:
      policy = std::make_unique<CapacityScheduler>(cluster);
      break;
    default:
      policy = std::make_unique<DelayScheduler>(cluster,
                                                DelaySchedulerConfig{30});
      break;
  }

  SimTrace trace;
  SimConfig config;
  config.trace = &trace;
  if (scenario.inject_failures) {
    config.node_failures = {{100, 1, 300}, {200, 9, kTimeNever}};
  }
  Simulator sim(cluster, *policy, jobs, config);
  SimMetrics metrics = sim.Run();

  // 1. Termination: every job completed or (SLO only) dropped.
  ASSERT_EQ(metrics.outcomes.size(), jobs.size());
  for (const JobOutcome& outcome : metrics.outcomes) {
    EXPECT_TRUE(outcome.completed || outcome.dropped)
        << "job " << outcome.id << " never terminated under "
        << policy->name();
    if (outcome.dropped) {
      EXPECT_TRUE(outcome.is_slo());  // only deadline-hopeless jobs drop
    }
    if (outcome.completed) {
      EXPECT_GE(outcome.start_time, outcome.submit);
      EXPECT_GT(outcome.completion, outcome.start_time);
    }
  }

  // 2. Node accounting: starts and releases balance out in the trace.
  int started_nodes = 0;
  int released_nodes = 0;
  for (const TraceEvent& event : trace.events()) {
    switch (event.kind) {
      case TraceEventKind::kStart:
        started_nodes += event.count;
        break;
      case TraceEventKind::kComplete:
      case TraceEventKind::kPreempt:
      case TraceEventKind::kFailureKill:
        released_nodes += event.count;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(started_nodes, released_nodes);

  // 3. Metrics sanity.
  EXPECT_GE(metrics.utilization, 0.0);
  EXPECT_LE(metrics.utilization, 1.0 + 1e-9);
  EXPECT_GE(metrics.TotalSloAttainment(), 0.0);
  EXPECT_LE(metrics.TotalSloAttainment(), 1.0);
  EXPECT_GT(metrics.makespan, 0);
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  int seed = 0;
  for (WorkloadKind kind : {WorkloadKind::kGrMix, WorkloadKind::kGsHet}) {
    for (int policy = 0; policy < 6; ++policy) {
      scenarios.push_back({1000 + seed++, kind, policy, policy % 2 == 0});
    }
  }
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, InvariantTest,
                         ::testing::ValuesIn(AllScenarios()));

}  // namespace
}  // namespace tetrisched
