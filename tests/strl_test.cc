// Tests for STRL expression construction, evaluation, and value functions.

#include <gtest/gtest.h>

#include "src/strl/strl.h"
#include "src/strl/value.h"

namespace tetrisched {
namespace {

TEST(StrlTest, LeafConstruction) {
  StrlExpr leaf = NCk({0, 1}, 2, 10, 20, 4.0, 7);
  EXPECT_EQ(leaf.kind, StrlKind::kNCk);
  EXPECT_TRUE(leaf.IsLeaf());
  EXPECT_EQ(leaf.k, 2);
  EXPECT_EQ(leaf.interval(), (TimeRange{10, 30}));
  EXPECT_EQ(leaf.tag, 7);
}

TEST(StrlTest, CountersAndPrinter) {
  StrlExpr expr = Sum({Max({NCk({0}, 1, 0, 10, 1.0, 1), NCk({1}, 1, 0, 10, 2.0, 2)}),
                       NCk({0, 1}, 2, 0, 5, 3.0, 3)});
  EXPECT_EQ(CountLeaves(expr), 3);
  EXPECT_EQ(CountNodes(expr), 5);
  std::string text = ToString(expr);
  EXPECT_NE(text.find("sum("), std::string::npos);
  EXPECT_NE(text.find("max("), std::string::npos);
  EXPECT_NE(text.find("nCk({p0,p1}, k=2"), std::string::npos);
}

TEST(StrlEvaluateTest, NCkSatisfiedOnlyWithFullGang) {
  StrlExpr leaf = NCk({0, 1}, 3, 0, 10, 5.0, 42);
  LeafGrants full{{42, {{0, 2}, {1, 1}}}};
  LeafGrants partial{{42, {{0, 2}}}};
  LeafGrants wrong_partition{{42, {{5, 3}}}};
  EXPECT_DOUBLE_EQ(EvaluateStrl(leaf, full), 5.0);
  EXPECT_DOUBLE_EQ(EvaluateStrl(leaf, partial), 0.0);
  EXPECT_DOUBLE_EQ(EvaluateStrl(leaf, wrong_partition), 0.0);
  EXPECT_DOUBLE_EQ(EvaluateStrl(leaf, {}), 0.0);
}

TEST(StrlEvaluateTest, LnCkScalesLinearly) {
  StrlExpr leaf = LnCk({0}, 4, 0, 10, 8.0, 1);
  EXPECT_DOUBLE_EQ(EvaluateStrl(leaf, {{1, {{0, 2}}}}), 4.0);
  EXPECT_DOUBLE_EQ(EvaluateStrl(leaf, {{1, {{0, 4}}}}), 8.0);
  // Grants above k are clamped.
  EXPECT_DOUBLE_EQ(EvaluateStrl(leaf, {{1, {{0, 9}}}}), 8.0);
}

TEST(StrlEvaluateTest, MaxPicksBestChild) {
  StrlExpr expr = Max({NCk({0}, 1, 0, 10, 3.0, 1), NCk({1}, 1, 0, 10, 7.0, 2)});
  EXPECT_DOUBLE_EQ(EvaluateStrl(expr, {{2, {{1, 1}}}}), 7.0);
  EXPECT_DOUBLE_EQ(EvaluateStrl(expr, {{1, {{0, 1}}}}), 3.0);
  EXPECT_DOUBLE_EQ(EvaluateStrl(expr, {}), 0.0);
}

TEST(StrlEvaluateTest, MinRequiresAllChildren) {
  // Anti-affinity: one node from each of two racks (paper Fig 1 Availability
  // job).
  StrlExpr expr = Min({NCk({0}, 1, 0, 10, 2.0, 1), NCk({1}, 1, 0, 10, 2.0, 2)});
  EXPECT_DOUBLE_EQ(EvaluateStrl(expr, {{1, {{0, 1}}}, {2, {{1, 1}}}}), 2.0);
  EXPECT_DOUBLE_EQ(EvaluateStrl(expr, {{1, {{0, 1}}}}), 0.0);
}

TEST(StrlEvaluateTest, ScaleAndBarrier) {
  StrlExpr scaled = Scale(NCk({0}, 1, 0, 10, 2.0, 1), 2.5);
  EXPECT_DOUBLE_EQ(EvaluateStrl(scaled, {{1, {{0, 1}}}}), 5.0);

  StrlExpr pass = Barrier(NCk({0}, 1, 0, 10, 4.0, 1), 3.0);
  EXPECT_DOUBLE_EQ(EvaluateStrl(pass, {{1, {{0, 1}}}}), 3.0);

  StrlExpr blocked = Barrier(NCk({0}, 1, 0, 10, 2.0, 1), 3.0);
  EXPECT_DOUBLE_EQ(EvaluateStrl(blocked, {{1, {{0, 1}}}}), 0.0);
}

TEST(StrlEvaluateTest, SumAggregates) {
  StrlExpr expr = Sum({NCk({0}, 1, 0, 10, 1.0, 1), NCk({0}, 1, 0, 10, 2.0, 2),
                       NCk({0}, 1, 0, 10, 4.0, 3)});
  LeafGrants grants{{1, {{0, 1}}}, {3, {{0, 1}}}};
  EXPECT_DOUBLE_EQ(EvaluateStrl(expr, grants), 5.0);
}

// --- Value functions (paper Fig 5) -----------------------------------------

TEST(ValueFunctionTest, AcceptedSloStep) {
  ValueFunction v = AcceptedSloValue(/*deadline=*/100);
  EXPECT_DOUBLE_EQ(v.At(0), 1000.0);
  EXPECT_DOUBLE_EQ(v.At(100), 1000.0);
  EXPECT_DOUBLE_EQ(v.At(101), 0.0);
  EXPECT_TRUE(v.is_step());
}

TEST(ValueFunctionTest, UnreservedSloStep) {
  ValueFunction v = UnreservedSloValue(/*deadline=*/50);
  EXPECT_DOUBLE_EQ(v.At(50), 25.0);
  EXPECT_DOUBLE_EQ(v.At(51), 0.0);
}

TEST(ValueFunctionTest, SloPriorityOrdering) {
  // Fig 5: accepted SLO >> SLO w/o reservation >> best effort, at any time
  // before the deadline.
  ValueFunction accepted = AcceptedSloValue(100);
  ValueFunction unreserved = UnreservedSloValue(100);
  ValueFunction best_effort = BestEffortValue(0, 1000);
  for (SimTime t : {0, 10, 50, 100}) {
    EXPECT_GT(accepted.At(t), unreserved.At(t));
    EXPECT_GT(unreserved.At(t), best_effort.At(t));
  }
}

TEST(ValueFunctionTest, BestEffortDecaysToFloor) {
  ValueFunction v = BestEffortValue(/*submit=*/0, /*decay_horizon=*/100);
  EXPECT_DOUBLE_EQ(v.At(0), 1.0);
  EXPECT_GT(v.At(50), v.At(99));
  EXPECT_NEAR(v.At(100), kBestEffortFloorFraction, 1e-9);
  // Never hits zero: long-waiting BE jobs stay schedulable.
  EXPECT_GT(v.At(100000), 0.0);
}

TEST(ValueFunctionTest, BestEffortPrefersEarlierCompletion) {
  ValueFunction v = BestEffortValue(10, 200);
  EXPECT_GT(v.At(20), v.At(120));
}

}  // namespace
}  // namespace tetrisched
