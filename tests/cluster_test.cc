// Tests for the cluster model, partitioning, availability grid, and ledger.

#include <gtest/gtest.h>

#include "src/cluster/availability.h"
#include "src/cluster/cluster.h"
#include "src/cluster/ledger.h"

namespace tetrisched {
namespace {

TEST(ClusterTest, UniformClusterShape) {
  Cluster cluster = MakeUniformCluster(8, 4, 0);
  EXPECT_EQ(cluster.num_nodes(), 32);
  EXPECT_EQ(cluster.num_racks(), 8);
  EXPECT_EQ(cluster.num_gpu_nodes(), 0);
  // Homogeneous racks: one partition per rack.
  EXPECT_EQ(cluster.num_partitions(), 8);
}

TEST(ClusterTest, GpuRacksFormDistinctPartitions) {
  Cluster cluster = MakeUniformCluster(4, 4, 2);
  EXPECT_EQ(cluster.num_gpu_nodes(), 8);
  EXPECT_EQ(cluster.num_partitions(), 4);
  PartitionSet gpu = cluster.GpuPartitions();
  EXPECT_EQ(gpu.size(), 2u);
  EXPECT_EQ(cluster.CapacityOf(gpu), 8);
  EXPECT_EQ(cluster.CapacityOf(cluster.AllPartitions()), 16);
}

TEST(ClusterTest, MixedRackSplitsIntoTwoPartitions) {
  // A rack with both GPU and non-GPU nodes must split by signature.
  std::vector<NodeSpec> nodes;
  for (int i = 0; i < 4; ++i) {
    NodeSpec node;
    node.rack = 0;
    node.has_gpu = i < 2;
    nodes.push_back(node);
  }
  Cluster cluster((std::move(nodes)));
  EXPECT_EQ(cluster.num_partitions(), 2);
  EXPECT_EQ(cluster.CapacityOf(cluster.GpuPartitions()), 2);
}

TEST(ClusterTest, RackPartitionsSelector) {
  Cluster cluster = MakeUniformCluster(3, 5, 1);
  for (RackId rack = 0; rack < 3; ++rack) {
    EXPECT_EQ(cluster.CapacityOf(cluster.RackPartitions(rack)), 5);
  }
}

TEST(ClusterTest, NodePartitionMapping) {
  Cluster cluster = MakeUniformCluster(2, 3, 1);
  for (NodeId node = 0; node < cluster.num_nodes(); ++node) {
    PartitionId p = cluster.partition_of(node);
    const Partition& partition = cluster.partition(p);
    EXPECT_EQ(partition.rack, cluster.node(node).rack);
    EXPECT_EQ(partition.has_gpu, cluster.node(node).has_gpu);
  }
}

TEST(TimeGridTest, SliceMath) {
  TimeGrid grid{.start = 100, .quantum = 10, .num_slices = 5};
  EXPECT_EQ(grid.horizon_end(), 150);
  EXPECT_EQ(grid.SliceOf(100), 0);
  EXPECT_EQ(grid.SliceOf(109), 0);
  EXPECT_EQ(grid.SliceOf(110), 1);
  EXPECT_EQ(grid.SliceOf(99), -1);

  auto [first, last] = grid.ClippedSliceRange(105, 20);  // [105, 125)
  EXPECT_EQ(first, 0);
  EXPECT_EQ(last, 3);  // covers slices 0,1,2

  auto full = grid.ClippedSliceRange(0, 1000);
  EXPECT_EQ(full.first, 0);
  EXPECT_EQ(full.second, 5);

  auto none = grid.ClippedSliceRange(200, 10);
  EXPECT_EQ(none.first, none.second);

  auto before = grid.ClippedSliceRange(0, 50);  // ends at grid start
  EXPECT_EQ(before.first, before.second);
}

TEST(AvailabilityGridTest, ReduceAndCanFit) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  TimeGrid grid{.start = 0, .quantum = 10, .num_slices = 4};
  AvailabilityGrid avail(cluster, grid);

  PartitionId p0 = cluster.RackPartitions(0)[0];
  EXPECT_EQ(avail.avail(p0, 0), 4);
  EXPECT_TRUE(avail.CanFit(p0, {0, 40}, 4));

  avail.Reduce(p0, {10, 30}, 3);
  EXPECT_EQ(avail.avail(p0, 0), 4);
  EXPECT_EQ(avail.avail(p0, 1), 1);
  EXPECT_EQ(avail.avail(p0, 2), 1);
  EXPECT_EQ(avail.avail(p0, 3), 4);
  EXPECT_TRUE(avail.CanFit(p0, {10, 30}, 1));
  EXPECT_FALSE(avail.CanFit(p0, {10, 30}, 2));
  EXPECT_TRUE(avail.CanFit(p0, {30, 40}, 4));
}

TEST(AvailabilityGridTest, RangesOutsideGridAreIgnored) {
  Cluster cluster = MakeUniformCluster(1, 2, 0);
  TimeGrid grid{.start = 0, .quantum = 5, .num_slices = 2};
  AvailabilityGrid avail(cluster, grid);
  avail.Reduce(0, {100, 200}, 2);  // beyond horizon
  EXPECT_EQ(avail.avail(0, 0), 2);
  EXPECT_EQ(avail.avail(0, 1), 2);
}

TEST(NodeLedgerTest, AcquireRelease) {
  Cluster cluster = MakeUniformCluster(2, 3, 1);
  NodeLedger ledger(cluster);
  EXPECT_EQ(ledger.total_free(), 6);

  PartitionId gpu = cluster.GpuPartitions()[0];
  std::vector<NodeId> got = ledger.Acquire(gpu, 2);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(ledger.free_in_partition(gpu), 1);
  EXPECT_EQ(ledger.total_free(), 4);
  for (NodeId node : got) {
    EXPECT_FALSE(ledger.is_free(node));
    EXPECT_TRUE(cluster.node(node).has_gpu);
  }

  ledger.Release(got);
  EXPECT_EQ(ledger.total_free(), 6);
  EXPECT_EQ(ledger.free_in_partition(gpu), 3);
}

TEST(NodeLedgerTest, AcquireAnywhereSpansPartitions) {
  Cluster cluster = MakeUniformCluster(2, 2, 0);
  NodeLedger ledger(cluster);
  std::vector<NodeId> got = ledger.AcquireAnywhere(3);
  EXPECT_EQ(got.size(), 3u);
  EXPECT_EQ(ledger.total_free(), 1);
}

TEST(NodeLedgerTest, DeterministicOrder) {
  Cluster cluster = MakeUniformCluster(1, 4, 0);
  NodeLedger a(cluster);
  NodeLedger b(cluster);
  EXPECT_EQ(a.Acquire(0, 2), b.Acquire(0, 2));
}

}  // namespace
}  // namespace tetrisched
