// Tests for the STRL -> MILP compiler, including the paper's worked example
// (§5.1 / Fig 4) reproduced end to end through the solver.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/availability.h"
#include "src/common/rng.h"
#include "src/cluster/cluster.h"
#include "src/compiler/compiler.h"
#include "src/solver/milp.h"
#include "src/strl/strl.h"

namespace tetrisched {
namespace {

// Helper: solve a compiled STRL to (near-)optimality.
MilpResult SolveCompiled(const CompiledStrl& compiled,
                         std::span<const double> warm = {}) {
  MilpOptions options;
  options.rel_gap = 0.0;
  return MilpSolver(compiled.model(), options).Solve(warm);
}

// Converts extracted allocations into LeafGrants for the STRL evaluator.
LeafGrants ToGrants(const std::vector<StrlAllocation>& allocations) {
  LeafGrants grants;
  for (const StrlAllocation& alloc : allocations) {
    for (const auto& [partition, count] : alloc.counts) {
      grants[alloc.tag][partition] += count;
    }
  }
  return grants;
}

class CompilerTest : public ::testing::Test {
 protected:
  // One rack of 3 identical machines (the paper's §5.1 example cluster);
  // 10-second quanta, 4 slices: times 0, 10, 20, 30.
  CompilerTest()
      : cluster_(MakeUniformCluster(1, 3, 0)),
        grid_{.start = 0, .quantum = 10, .num_slices = 4},
        avail_(cluster_, grid_) {}

  Cluster cluster_;
  TimeGrid grid_;
  AvailabilityGrid avail_;
};

TEST_F(CompilerTest, SingleLeafCompilesAndSolves) {
  StrlExpr root = NCk(cluster_.AllPartitions(), 2, 0, 10, 1.0, 1);
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 1.0, 1e-6);

  auto allocations = compiled.ExtractAllocations(result.values);
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations[0].tag, 1);
  EXPECT_EQ(allocations[0].total_nodes(), 2);
  EXPECT_EQ(allocations[0].start, 0);
  EXPECT_EQ(allocations[0].duration, 10);
}

TEST_F(CompilerTest, InfeasibleLeafIsCulled) {
  // Asks for 5 machines on a 3-machine cluster: indicator must pin to 0.
  StrlExpr root = NCk(cluster_.AllPartitions(), 5, 0, 10, 1.0, 1);
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 0.0, 1e-6);
  EXPECT_TRUE(compiled.ExtractAllocations(result.values).empty());
}

TEST_F(CompilerTest, MaxChoosesHigherValueBranch) {
  StrlExpr root = Max({NCk(cluster_.AllPartitions(), 2, 0, 10, 3.0, 1),
                       NCk(cluster_.AllPartitions(), 2, 0, 20, 4.0, 2)});
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 4.0, 1e-6);
  auto allocations = compiled.ExtractAllocations(result.values);
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations[0].tag, 2);
}

TEST_F(CompilerTest, SupplyConstraintLimitsConcurrency) {
  // Three gangs of 2 at the same time on 3 machines: only one fits.
  std::vector<StrlExpr> jobs;
  for (int j = 0; j < 3; ++j) {
    jobs.push_back(NCk(cluster_.AllPartitions(), 2, 0, 10, 1.0, j + 1));
  }
  StrlExpr root = Sum(std::move(jobs));
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 1.0, 1e-6);
}

TEST_F(CompilerTest, ObjectiveMatchesStrlEvaluation) {
  StrlExpr root =
      Sum({Max({NCk(cluster_.AllPartitions(), 2, 0, 10, 2.0, 1),
                NCk(cluster_.AllPartitions(), 2, 10, 10, 1.5, 2)}),
           Max({NCk(cluster_.AllPartitions(), 1, 0, 20, 1.0, 3),
                NCk(cluster_.AllPartitions(), 1, 10, 20, 0.5, 4)})});
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  auto allocations = compiled.ExtractAllocations(result.values);
  EXPECT_NEAR(result.objective, EvaluateStrl(root, ToGrants(allocations)),
              1e-6);
}

// Paper §5.1 / Fig 4: 3 jobs on 3 machines; the only way to satisfy every
// deadline is global scheduling with plan-ahead, yielding job 1 at t=0,
// job 3 at t=10, job 2 at t=20.
TEST_F(CompilerTest, PaperWorkedExampleFig4) {
  PartitionSet all = cluster_.AllPartitions();
  // Job 1: 2 machines x 10s, deadline 10 -> only start 0.
  StrlExpr job1 = NCk(all, 2, 0, 10, 1.0, 100);
  // Job 2: 1 machine x 20s, deadline 40 -> starts 0, 10, 20.
  StrlExpr job2 = Max({NCk(all, 1, 0, 20, 1.0, 200), NCk(all, 1, 10, 20, 1.0, 201),
                       NCk(all, 1, 20, 20, 1.0, 202)});
  // Job 3: 3 machines x 10s, deadline 20 -> starts 0, 10.
  StrlExpr job3 = Max({NCk(all, 3, 0, 10, 1.0, 300), NCk(all, 3, 10, 10, 1.0, 301)});
  StrlExpr root = Sum({std::move(job1), std::move(job2), std::move(job3)});

  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 3.0, 1e-6);  // all three deadlines met

  auto allocations = compiled.ExtractAllocations(result.values);
  ASSERT_EQ(allocations.size(), 3u);
  std::map<LeafTag, SimTime> starts;
  for (const StrlAllocation& alloc : allocations) {
    starts[alloc.tag] = alloc.start;
  }
  EXPECT_TRUE(starts.count(100));
  EXPECT_EQ(starts[100], 0);   // job 1 immediately
  EXPECT_TRUE(starts.count(202));
  EXPECT_EQ(starts[202], 20);  // job 2 deferred to t=20
  EXPECT_TRUE(starts.count(301));
  EXPECT_EQ(starts[301], 10);  // job 3 at t=10
}

TEST_F(CompilerTest, WarmStartRoundTrips) {
  PartitionSet all = cluster_.AllPartitions();
  StrlExpr root = Sum({Max({NCk(all, 2, 0, 10, 2.0, 1)}),
                       Max({NCk(all, 1, 0, 10, 1.0, 2)})});
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);

  LeafGrants grants{{1, {{0, 2}}}, {2, {{0, 1}}}};
  std::vector<double> warm = compiled.BuildWarmStart(grants);
  ASSERT_FALSE(warm.empty());
  EXPECT_TRUE(compiled.model().IsFeasible(warm, 1e-6));
  EXPECT_NEAR(compiled.model().ObjectiveValue(warm), 3.0, 1e-9);

  MilpResult result = SolveCompiled(compiled, warm);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 3.0, 1e-6);
}

TEST_F(CompilerTest, WarmStartWithUnknownTagIsRejected) {
  StrlExpr root = NCk(cluster_.AllPartitions(), 1, 0, 10, 1.0, 1);
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  EXPECT_TRUE(compiled.BuildWarmStart({{99, {{0, 1}}}}).empty());
}

TEST_F(CompilerTest, ReducedAvailabilityIsRespected) {
  // 2 of 3 machines busy during [0, 20): a 2-gang can only run at t=20.
  avail_.Reduce(0, {0, 20}, 2);
  PartitionSet all = cluster_.AllPartitions();
  StrlExpr root = Max({NCk(all, 2, 0, 10, 3.0, 1), NCk(all, 2, 10, 10, 2.0, 2),
                       NCk(all, 2, 20, 10, 1.0, 3)});
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  auto allocations = compiled.ExtractAllocations(result.values);
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations[0].tag, 3);
  EXPECT_NEAR(result.objective, 1.0, 1e-6);
}

class HeterogeneousCompilerTest : public ::testing::Test {
 protected:
  // Fig 1 cluster: 2 racks x 2 nodes, rack 0 GPU-enabled.
  HeterogeneousCompilerTest()
      : cluster_(MakeUniformCluster(2, 2, 1)),
        grid_{.start = 0, .quantum = 1, .num_slices = 6},
        avail_(cluster_, grid_) {}

  Cluster cluster_;
  TimeGrid grid_;
  AvailabilityGrid avail_;
};

TEST_F(HeterogeneousCompilerTest, GpuJobPrefersGpuNodes) {
  // Paper §4.3: GPU job takes 2 time units on GPU nodes, 3 otherwise; value
  // decreases with completion time.
  StrlExpr root = Max({NCk(cluster_.GpuPartitions(), 2, 0, 2, 4.0, 1),
                       NCk(cluster_.AllPartitions(), 2, 0, 3, 3.0, 2)});
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  auto allocations = compiled.ExtractAllocations(result.values);
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations[0].tag, 1);
  // All nodes granted from the GPU partition.
  for (const auto& [partition, count] : allocations[0].counts) {
    EXPECT_TRUE(cluster_.partition(partition).has_gpu);
    EXPECT_EQ(count, 2);
  }
}

TEST_F(HeterogeneousCompilerTest, GpuBusyFallsBackToAnywhere) {
  avail_.Reduce(cluster_.GpuPartitions()[0], {0, 6}, 2);  // GPUs all busy
  StrlExpr root = Max({NCk(cluster_.GpuPartitions(), 2, 0, 2, 4.0, 1),
                       NCk(cluster_.AllPartitions(), 2, 0, 3, 3.0, 2)});
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  auto allocations = compiled.ExtractAllocations(result.values);
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations[0].tag, 2);
  EXPECT_NEAR(result.objective, 3.0, 1e-6);
}

TEST_F(HeterogeneousCompilerTest, MinExpressesAntiAffinity) {
  // Fig 1 Availability job: one task on each rack, duration 3.
  StrlExpr root = Min({NCk(cluster_.RackPartitions(0), 1, 0, 3, 2.0, 1),
                       NCk(cluster_.RackPartitions(1), 1, 0, 3, 2.0, 2)});
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 2.0, 1e-6);
  auto allocations = compiled.ExtractAllocations(result.values);
  ASSERT_EQ(allocations.size(), 2u);
}

TEST_F(HeterogeneousCompilerTest, LnCkGrantsPartialGangs) {
  // 4-node cluster, ask for up to 6 nodes linearly: expect 4 granted.
  StrlExpr root = LnCk(cluster_.AllPartitions(), 6, 0, 2, 6.0, 1);
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 4.0, 1e-6);
  auto allocations = compiled.ExtractAllocations(result.values);
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations[0].total_nodes(), 4);
}

TEST_F(HeterogeneousCompilerTest, ScaledJobWinsContention) {
  // Two identical jobs contending for the same 2 GPU nodes; the scaled one
  // (higher priority) must win.
  StrlExpr job_a = NCk(cluster_.GpuPartitions(), 2, 0, 2, 1.0, 1);
  StrlExpr job_b = Scale(NCk(cluster_.GpuPartitions(), 2, 0, 2, 1.0, 2), 10.0);
  StrlExpr root = Sum({std::move(job_a), std::move(job_b)});
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  auto allocations = compiled.ExtractAllocations(result.values);
  ASSERT_EQ(allocations.size(), 1u);
  EXPECT_EQ(allocations[0].tag, 2);
  EXPECT_NEAR(result.objective, 10.0, 1e-6);
}

TEST_F(HeterogeneousCompilerTest, BarrierGatesLowValueAllocations) {
  // Barrier of 3 over a 2-valued subtree: no allocation is worth making.
  StrlExpr root = Barrier(NCk(cluster_.AllPartitions(), 1, 0, 2, 2.0, 1), 3.0);
  CompiledStrl compiled = StrlCompiler(avail_).Compile(root);
  MilpResult result = SolveCompiled(compiled);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 0.0, 1e-6);
  EXPECT_TRUE(compiled.ExtractAllocations(result.values).empty());
}

// Property sweep: random forests of jobs must produce solver objectives that
// match the STRL evaluator on the extracted allocation, and never violate
// supply.
class CompilerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CompilerPropertyTest, ExtractionConsistentAndSupplySafe) {
  Rng rng(777 + GetParam());
  Cluster cluster = MakeUniformCluster(2, 3, 1);
  TimeGrid grid{.start = 0, .quantum = 5, .num_slices = 6};
  AvailabilityGrid avail(cluster, grid);

  std::vector<StrlExpr> jobs;
  int num_jobs = static_cast<int>(rng.UniformInt(2, 6));
  LeafTag next_tag = 1;
  for (int j = 0; j < num_jobs; ++j) {
    std::vector<StrlExpr> options;
    int num_options = static_cast<int>(rng.UniformInt(1, 4));
    int k = static_cast<int>(rng.UniformInt(1, 4));
    for (int o = 0; o < num_options; ++o) {
      SimTime start = rng.UniformInt(0, 5) * 5;
      SimDuration dur = rng.UniformInt(1, 4) * 5;
      PartitionSet set = rng.Bernoulli(0.5) ? cluster.AllPartitions()
                                            : cluster.GpuPartitions();
      options.push_back(
          NCk(set, k, start, dur, rng.UniformReal(0.5, 5.0), next_tag++));
    }
    jobs.push_back(Max(std::move(options)));
  }
  StrlExpr root = Sum(std::move(jobs));

  CompiledStrl compiled = StrlCompiler(avail).Compile(root);
  MilpOptions options;
  options.rel_gap = 0.0;
  MilpResult result = MilpSolver(compiled.model(), options).Solve();
  ASSERT_TRUE(result.HasSolution()) << "seed " << GetParam();

  auto allocations = compiled.ExtractAllocations(result.values);
  EXPECT_NEAR(result.objective, EvaluateStrl(root, ToGrants(allocations)),
              1e-5)
      << "seed " << GetParam();

  // Replay the allocations against a fresh grid: supply must never go
  // negative.
  AvailabilityGrid replay(cluster, grid);
  for (const StrlAllocation& alloc : allocations) {
    for (const auto& [partition, count] : alloc.counts) {
      replay.Reduce(partition, {alloc.start, alloc.start + alloc.duration},
                    count);
    }
  }
  for (int p = 0; p < cluster.num_partitions(); ++p) {
    for (int s = 0; s < grid.num_slices; ++s) {
      EXPECT_GE(replay.avail(p, s), 0)
          << "seed " << GetParam() << " partition " << p << " slice " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomForests, CompilerPropertyTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace tetrisched
