// Tests for the common utilities: time quantization, RNG distributions,
// sample statistics, and logging.

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/time.h"

namespace tetrisched {
namespace {

// --- time --------------------------------------------------------------------

TEST(TimeTest, Quantization) {
  EXPECT_EQ(QuantizeDown(17, 8), 16);
  EXPECT_EQ(QuantizeDown(16, 8), 16);
  EXPECT_EQ(QuantizeDown(0, 8), 0);
  EXPECT_EQ(QuantizeUp(17, 8), 24);
  EXPECT_EQ(QuantizeUp(16, 8), 16);
  EXPECT_EQ(QuantaCovering(1, 8), 1);
  EXPECT_EQ(QuantaCovering(8, 8), 1);
  EXPECT_EQ(QuantaCovering(9, 8), 2);
}

TEST(TimeTest, TimeRangeSemantics) {
  TimeRange range{10, 20};
  EXPECT_EQ(range.length(), 10);
  EXPECT_FALSE(range.empty());
  EXPECT_TRUE(range.contains(10));
  EXPECT_TRUE(range.contains(19));
  EXPECT_FALSE(range.contains(20));  // half open
  EXPECT_TRUE(range.overlaps({19, 25}));
  EXPECT_FALSE(range.overlaps({20, 25}));
  EXPECT_TRUE((TimeRange{5, 5}).empty());
}

TEST(TimeTest, FormatSimTime) {
  EXPECT_EQ(FormatSimTime(0), "0:00:00");
  EXPECT_EQ(FormatSimTime(3661), "1:01:01");
  EXPECT_EQ(FormatSimTime(kTimeNever), "never");
  EXPECT_EQ(FormatSimTime(-61), "-0:01:01");
}

// --- rng ----------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t x = rng.UniformInt(3, 9);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 9);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(50.0);
  }
  EXPECT_NEAR(sum / n, 50.0, 2.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(5);
  Rng child = parent.Fork();
  // The fork must not replay the parent's stream.
  bool any_different = false;
  Rng parent2(5);
  parent2.Fork();
  for (int i = 0; i < 16; ++i) {
    if (child.UniformInt(0, 1 << 30) != parent.UniformInt(0, 1 << 30)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

// --- stats ---------------------------------------------------------------------

TEST(StatsTest, BasicMoments) {
  SampleStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) {
    stats.Add(x);
  }
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
}

TEST(StatsTest, EmptyIsSafe) {
  SampleStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 0.0);
  EXPECT_TRUE(stats.Cdf().empty());
}

TEST(StatsTest, Percentiles) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Add(i);
  }
  EXPECT_NEAR(stats.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(stats.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(stats.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(stats.Percentile(90), 90.1, 0.2);
}

TEST(StatsTest, CdfIsMonotone) {
  SampleStats stats;
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    stats.Add(rng.UniformReal(0, 100));
  }
  auto cdf = stats.Cdf(50);
  ASSERT_FALSE(cdf.empty());
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(StatsTest, SortedCacheInvalidatesOnAdd) {
  // Regression test for the cached-sort optimization: interleaving Add with
  // Percentile/Cdf/Sorted queries must always reflect the latest samples,
  // i.e. the cache is invalidated by every Add.
  SampleStats stats;
  stats.Add(10.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 10.0);
  stats.Add(5.0);  // arrives after the first query built the cache
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 5.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 10.0);
  stats.Add(20.0);
  std::vector<double> sorted = stats.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_DOUBLE_EQ(sorted[0], 5.0);
  EXPECT_DOUBLE_EQ(sorted[2], 20.0);
  stats.Add(1.0);
  auto cdf = stats.Cdf();
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.front().first, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().first, 20.0);
  // Repeated queries without new samples stay consistent (served from the
  // cache) and out-of-order insertion never leaks into query results.
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Mean(), 9.0);
}

TEST(StatsTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(1, 2), "50.0%");
  EXPECT_EQ(FormatPercent(0, 0), "n/a");
  EXPECT_EQ(FormatPercent(3, 3), "100.0%");
}

// --- logging --------------------------------------------------------------------

TEST(LoggingTest, ThresholdControlsEmission) {
  // We cannot easily capture stderr portably here; instead verify the level
  // plumbing itself.
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  TETRI_LOG(kDebug) << "suppressed";
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, ParseLogLevelNamesAndFallback) {
  // Case-insensitive names, as accepted by TETRISCHED_LOG_LEVEL.
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kError), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning", LogLevel::kError), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn", LogLevel::kError), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kDebug), LogLevel::kError);
  // Unknown, empty, and missing values fall back.
  EXPECT_EQ(ParseLogLevel("verbose", LogLevel::kWarning), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kError), LogLevel::kError);
}

}  // namespace
}  // namespace tetrisched
