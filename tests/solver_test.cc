// Unit and property tests for the LP simplex and MILP branch-and-bound.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/milp.h"
#include "src/solver/model.h"
#include "src/solver/simplex.h"

namespace tetrisched {
namespace {

TEST(LpSolverTest, SimpleTwoVarMax) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  -> x=4, y=0, obj=12.
  MilpModel model;
  VarId x = model.AddContinuousVar(0, kInfinity, "x");
  VarId y = model.AddContinuousVar(0, kInfinity, "y");
  model.AddObjectiveTerm(x, 3.0);
  model.AddObjectiveTerm(y, 2.0);
  model.AddConstraint({{x, 1}, {y, 1}}, ConstraintSense::kLessEqual, 4);
  model.AddConstraint({{x, 1}, {y, 3}}, ConstraintSense::kLessEqual, 6);

  LpSolver solver(model);
  LpResult result = solver.Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 12.0, 1e-6);
  EXPECT_NEAR(result.values[x], 4.0, 1e-6);
  EXPECT_NEAR(result.values[y], 0.0, 1e-6);
}

TEST(LpSolverTest, InteriorOptimum) {
  // max x + y s.t. 2x + y <= 4, x + 2y <= 4 -> x=y=4/3, obj=8/3.
  MilpModel model;
  VarId x = model.AddContinuousVar(0, kInfinity, "x");
  VarId y = model.AddContinuousVar(0, kInfinity, "y");
  model.AddObjectiveTerm(x, 1.0);
  model.AddObjectiveTerm(y, 1.0);
  model.AddConstraint({{x, 2}, {y, 1}}, ConstraintSense::kLessEqual, 4);
  model.AddConstraint({{x, 1}, {y, 2}}, ConstraintSense::kLessEqual, 4);

  LpResult result = LpSolver(model).Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 8.0 / 3.0, 1e-6);
  EXPECT_NEAR(result.values[x], 4.0 / 3.0, 1e-6);
  EXPECT_NEAR(result.values[y], 4.0 / 3.0, 1e-6);
}

TEST(LpSolverTest, UpperBoundsRespected) {
  // max x + y with x <= 1.5, y <= 2.5 and x + y <= 3 -> obj = 3.
  MilpModel model;
  VarId x = model.AddContinuousVar(0, 1.5, "x");
  VarId y = model.AddContinuousVar(0, 2.5, "y");
  model.AddObjectiveTerm(x, 1.0);
  model.AddObjectiveTerm(y, 1.0);
  model.AddConstraint({{x, 1}, {y, 1}}, ConstraintSense::kLessEqual, 3);

  LpResult result = LpSolver(model).Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 3.0, 1e-6);
  EXPECT_LE(result.values[x], 1.5 + 1e-9);
  EXPECT_LE(result.values[y], 2.5 + 1e-9);
}

TEST(LpSolverTest, EqualityConstraintNeedsPhase1) {
  // max x + 2y s.t. x + y == 5, y <= 3 -> x=2, y=3, obj=8.
  MilpModel model;
  VarId x = model.AddContinuousVar(0, kInfinity, "x");
  VarId y = model.AddContinuousVar(0, 3, "y");
  model.AddObjectiveTerm(x, 1.0);
  model.AddObjectiveTerm(y, 2.0);
  model.AddConstraint({{x, 1}, {y, 1}}, ConstraintSense::kEqual, 5);

  LpResult result = LpSolver(model).Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 8.0, 1e-6);
  EXPECT_NEAR(result.values[x], 2.0, 1e-6);
  EXPECT_NEAR(result.values[y], 3.0, 1e-6);
}

TEST(LpSolverTest, GreaterEqualConstraint) {
  // max -x (i.e. minimize x) s.t. x >= 2 -> x=2.
  MilpModel model;
  VarId x = model.AddContinuousVar(0, kInfinity, "x");
  model.AddObjectiveTerm(x, -1.0);
  model.AddConstraint({{x, 1}}, ConstraintSense::kGreaterEqual, 2);

  LpResult result = LpSolver(model).Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.values[x], 2.0, 1e-6);
  EXPECT_NEAR(result.objective, -2.0, 1e-6);
}

TEST(LpSolverTest, DetectsInfeasible) {
  MilpModel model;
  VarId x = model.AddContinuousVar(0, 1, "x");
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint({{x, 1}}, ConstraintSense::kGreaterEqual, 2);

  LpResult result = LpSolver(model).Solve();
  EXPECT_EQ(result.status, LpStatus::kInfeasible);
}

TEST(LpSolverTest, DetectsUnbounded) {
  MilpModel model;
  VarId x = model.AddContinuousVar(0, kInfinity, "x");
  VarId y = model.AddContinuousVar(0, kInfinity, "y");
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint({{x, 1}, {y, -1}}, ConstraintSense::kLessEqual, 1);

  LpResult result = LpSolver(model).Solve();
  EXPECT_EQ(result.status, LpStatus::kUnbounded);
}

TEST(LpSolverTest, FreeVariable) {
  // max -|x| style: max -x + y, y <= 2, x >= -3 (free var with negative lb)
  // x + y <= 1 -> push x to -3, y to 2? x + y = -1 <= 1 ok. obj = 3 + 2 = 5.
  MilpModel model;
  VarId x = model.AddContinuousVar(-3, kInfinity, "x");
  VarId y = model.AddContinuousVar(0, 2, "y");
  model.AddObjectiveTerm(x, -1.0);
  model.AddObjectiveTerm(y, 1.0);
  model.AddConstraint({{x, 1}, {y, 1}}, ConstraintSense::kLessEqual, 1);

  LpResult result = LpSolver(model).Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 5.0, 1e-6);
}

TEST(LpSolverTest, DuplicateTermsAreSummed) {
  // x appears twice with coeff 0.5 each -> effectively x <= 3.
  MilpModel model;
  VarId x = model.AddContinuousVar(0, kInfinity, "x");
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint({{x, 0.5}, {x, 0.5}}, ConstraintSense::kLessEqual, 3);

  LpResult result = LpSolver(model).Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.values[x], 3.0, 1e-6);
}

TEST(LpSolverTest, DegenerateProblemTerminates) {
  // Many redundant constraints through the same vertex.
  MilpModel model;
  VarId x = model.AddContinuousVar(0, kInfinity, "x");
  VarId y = model.AddContinuousVar(0, kInfinity, "y");
  model.AddObjectiveTerm(x, 1.0);
  model.AddObjectiveTerm(y, 1.0);
  for (int i = 0; i < 20; ++i) {
    model.AddConstraint({{x, 1.0 + 0.0 * i}, {y, 1.0}},
                        ConstraintSense::kLessEqual, 2);
  }
  LpResult result = LpSolver(model).Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-6);
}

TEST(MilpSolverTest, Knapsack) {
  // values {10,13,7}, weights {3,4,2}, cap 6 -> best {13,7} = 20.
  MilpModel model;
  std::vector<VarId> pick;
  const double values[] = {10, 13, 7};
  const double weights[] = {3, 4, 2};
  std::vector<LinTerm> row;
  for (int i = 0; i < 3; ++i) {
    VarId v = model.AddBinaryVar("pick" + std::to_string(i));
    model.AddObjectiveTerm(v, values[i]);
    row.push_back({v, weights[i]});
    pick.push_back(v);
  }
  model.AddConstraint(row, ConstraintSense::kLessEqual, 6);

  MilpOptions options;
  options.rel_gap = 0.0;
  MilpResult result = MilpSolver(model, options).Solve();
  ASSERT_TRUE(result.HasSolution());
  EXPECT_EQ(result.status, MilpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 20.0, 1e-6);
  EXPECT_NEAR(result.values[pick[0]], 0.0, 1e-6);
  EXPECT_NEAR(result.values[pick[1]], 1.0, 1e-6);
  EXPECT_NEAR(result.values[pick[2]], 1.0, 1e-6);
}

TEST(MilpSolverTest, IntegerVariableRounding) {
  // max x s.t. 2x <= 7, x integer -> x = 3.
  MilpModel model;
  VarId x = model.AddIntegerVar(0, kInfinity, "x");
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint({{x, 2}}, ConstraintSense::kLessEqual, 7);

  MilpOptions options;
  options.rel_gap = 0.0;
  MilpResult result = MilpSolver(model, options).Solve();
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 3.0, 1e-6);
}

TEST(MilpSolverTest, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6, x binary -> infeasible.
  MilpModel model;
  VarId x = model.AddBinaryVar("x");
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint({{x, 1}}, ConstraintSense::kGreaterEqual, 0.4);
  model.AddConstraint({{x, 1}}, ConstraintSense::kLessEqual, 0.6);

  MilpResult result = MilpSolver(model).Solve();
  EXPECT_EQ(result.status, MilpStatus::kInfeasible);
}

TEST(MilpSolverTest, WarmStartAccepted) {
  MilpModel model;
  VarId x = model.AddBinaryVar("x");
  VarId y = model.AddBinaryVar("y");
  model.AddObjectiveTerm(x, 2.0);
  model.AddObjectiveTerm(y, 3.0);
  model.AddConstraint({{x, 1}, {y, 1}}, ConstraintSense::kLessEqual, 1);

  std::vector<double> warm = {1.0, 0.0};  // feasible but suboptimal
  MilpOptions options;
  options.rel_gap = 0.0;
  MilpResult result = MilpSolver(model, options).Solve(warm);
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 3.0, 1e-6);  // improves past the warm start
}

TEST(MilpSolverTest, GapLimitStopsEarly) {
  // A problem with optimum 100; an incumbent of >= 91 satisfies a 10% gap.
  MilpModel model;
  std::vector<LinTerm> row;
  for (int i = 0; i < 10; ++i) {
    VarId v = model.AddBinaryVar("v" + std::to_string(i));
    model.AddObjectiveTerm(v, 10.0);
    row.push_back({v, 1.0});
  }
  model.AddConstraint(row, ConstraintSense::kLessEqual, 10);

  MilpOptions options;
  options.rel_gap = 0.10;
  MilpResult result = MilpSolver(model, options).Solve();
  ASSERT_TRUE(result.HasSolution());
  EXPECT_GE(result.objective, 90.0 - 1e-6);
}

// Property test: on random small MILPs, branch-and-bound must match
// exhaustive enumeration of the binary assignments.
class MilpRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MilpRandomTest, MatchesBruteForce) {
  Rng rng(1234 + GetParam());
  const int num_vars = static_cast<int>(rng.UniformInt(2, 8));
  const int num_cons = static_cast<int>(rng.UniformInt(1, 6));

  MilpModel model;
  std::vector<double> objective(num_vars);
  for (int v = 0; v < num_vars; ++v) {
    model.AddBinaryVar("b" + std::to_string(v));
    objective[v] = rng.UniformReal(-5.0, 10.0);
    model.AddObjectiveTerm(v, objective[v]);
  }
  struct Row {
    std::vector<double> coeffs;
    ConstraintSense sense;
    double rhs;
  };
  std::vector<Row> rows;
  for (int c = 0; c < num_cons; ++c) {
    Row row;
    row.coeffs.resize(num_vars);
    std::vector<LinTerm> terms;
    for (int v = 0; v < num_vars; ++v) {
      row.coeffs[v] = rng.Bernoulli(0.6) ? rng.UniformReal(-3.0, 5.0) : 0.0;
      if (row.coeffs[v] != 0.0) {
        terms.push_back({v, row.coeffs[v]});
      }
    }
    row.sense = ConstraintSense::kLessEqual;
    row.rhs = rng.UniformReal(0.0, 6.0);
    rows.push_back(row);
    if (!terms.empty()) {
      model.AddConstraint(terms, row.sense, row.rhs);
    }
  }

  // Brute force over all 2^n assignments.
  double best = -kInfinity;
  for (int mask = 0; mask < (1 << num_vars); ++mask) {
    bool feasible = true;
    for (const Row& row : rows) {
      double lhs = 0.0;
      for (int v = 0; v < num_vars; ++v) {
        if (mask & (1 << v)) {
          lhs += row.coeffs[v];
        }
      }
      if (lhs > row.rhs + 1e-9) {
        feasible = false;
        break;
      }
    }
    if (!feasible) {
      continue;
    }
    double obj = 0.0;
    for (int v = 0; v < num_vars; ++v) {
      if (mask & (1 << v)) {
        obj += objective[v];
      }
    }
    best = std::max(best, obj);
  }

  MilpOptions options;
  options.rel_gap = 0.0;
  MilpResult result = MilpSolver(model, options).Solve();
  if (best == -kInfinity) {
    EXPECT_EQ(result.status, MilpStatus::kInfeasible);
  } else {
    ASSERT_TRUE(result.HasSolution()) << "seed " << GetParam();
    EXPECT_EQ(result.status, MilpStatus::kOptimal) << "seed " << GetParam();
    EXPECT_NEAR(result.objective, best, 1e-5) << "seed " << GetParam();
    EXPECT_TRUE(model.IsFeasible(result.values));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MilpRandomTest,
                         ::testing::Range(0, 40));

// Property test: random LPs where x=0 is feasible must report an objective
// at least 0 and a feasible solution.
class LpRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LpRandomTest, FeasibleAndBoundConsistent) {
  Rng rng(99 + GetParam());
  const int num_vars = static_cast<int>(rng.UniformInt(2, 12));
  const int num_cons = static_cast<int>(rng.UniformInt(1, 10));

  MilpModel model;
  for (int v = 0; v < num_vars; ++v) {
    model.AddContinuousVar(0.0, rng.UniformReal(0.5, 4.0));
    model.AddObjectiveTerm(v, rng.UniformReal(-2.0, 5.0));
  }
  for (int c = 0; c < num_cons; ++c) {
    std::vector<LinTerm> terms;
    for (int v = 0; v < num_vars; ++v) {
      if (rng.Bernoulli(0.5)) {
        terms.push_back({v, rng.UniformReal(0.1, 3.0)});
      }
    }
    if (!terms.empty()) {
      model.AddConstraint(terms, ConstraintSense::kLessEqual,
                          rng.UniformReal(0.5, 8.0));
    }
  }

  LpResult result = LpSolver(model).Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal) << "seed " << GetParam();
  EXPECT_GE(result.objective, -1e-9);
  EXPECT_TRUE(model.IsFeasible(result.values, 1e-5));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LpRandomTest,
                         ::testing::Range(0, 40));

TEST(MilpModelTest, FeasibilityChecker) {
  MilpModel model;
  VarId x = model.AddBinaryVar("x");
  VarId y = model.AddContinuousVar(0, 2, "y");
  model.AddConstraint({{x, 1}, {y, 1}}, ConstraintSense::kLessEqual, 2);

  EXPECT_TRUE(model.IsFeasible(std::vector<double>{1.0, 1.0}));
  EXPECT_FALSE(model.IsFeasible(std::vector<double>{0.5, 1.0}));  // frac bin
  EXPECT_FALSE(model.IsFeasible(std::vector<double>{1.0, 1.5}));  // row viol
  EXPECT_FALSE(model.IsFeasible(std::vector<double>{1.0, 3.0}));  // bound
}

TEST(MilpModelTest, DebugStringMentionsPieces) {
  MilpModel model;
  VarId x = model.AddBinaryVar("choose");
  model.AddObjectiveTerm(x, 4.0);
  model.AddConstraint({{x, 1}}, ConstraintSense::kLessEqual, 1, "cap");
  std::string dump = model.DebugString();
  EXPECT_NE(dump.find("maximize"), std::string::npos);
  EXPECT_NE(dump.find("cap"), std::string::npos);
  EXPECT_NE(dump.find("choose"), std::string::npos);
}

}  // namespace
}  // namespace tetrisched
