// End-to-end scheduler crash/recovery tests (DESIGN.md §11): a crash
// injected at every instrumented cycle phase must recover to a state that
// passes plan validation; a crash that lands between cycles must leave the
// final metrics byte-identical to a no-crash run with the same seed; and
// crash runs themselves must be deterministic.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/scheduler.h"
#include "src/rayon/rayon.h"
#include "src/sim/faults.h"
#include "src/sim/simulator.h"
#include "src/workload/workload.h"

namespace tetrisched {
namespace {

// Wall-clock limits and multi-threaded solves are the only nondeterminism
// sources in a TetriSched run; pin both so same-seed runs are comparable.
TetriSchedConfig PinnedConfig() {
  TetriSchedConfig config = TetriSchedConfig::Full();
  config.milp.rel_gap = 0.0;
  config.milp.num_threads = 1;
  config.milp.time_limit_seconds = 1e9;
  return config;
}

// One simulated run of a small mixed SLO/best-effort workload with the
// given scheduler crashes. Every run reconstructs the workload, admission
// agenda, and policy from the same seeds, so runs differ only in the
// crashes injected.
SimMetrics RunOnce(const std::vector<SchedulerCrashEvent>& crashes,
                   SimConfig config = {}) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  WorkloadParams params;
  params.kind = WorkloadKind::kGsMix;
  params.seed = 11;
  params.num_jobs = 10;

  std::vector<Job> jobs = GenerateWorkload(cluster, params);
  RayonAdmission rayon(cluster.num_nodes());
  ApplyAdmission(cluster, jobs, &rayon);

  config.scheduler_crashes = crashes;
  config.rayon = &rayon;
  TetriSchedConfig sched_config = PinnedConfig();
  config.policy_factory = [&cluster, sched_config]() {
    return std::make_unique<TetriScheduler>(cluster, sched_config);
  };
  TetriScheduler scheduler(cluster, sched_config);
  Simulator sim(cluster, scheduler, std::move(jobs), config);
  return sim.Run();
}

void ExpectSameOutcomes(const SimMetrics& a, const SimMetrics& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(a.outcomes[i].id));
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].started, b.outcomes[i].started);
    EXPECT_EQ(a.outcomes[i].completed, b.outcomes[i].completed);
    EXPECT_EQ(a.outcomes[i].dropped, b.outcomes[i].dropped);
    EXPECT_EQ(a.outcomes[i].start_time, b.outcomes[i].start_time);
    EXPECT_EQ(a.outcomes[i].completion, b.outcomes[i].completion);
    EXPECT_EQ(a.outcomes[i].placement, b.outcomes[i].placement);
    EXPECT_EQ(a.outcomes[i].preferred, b.outcomes[i].preferred);
    EXPECT_EQ(a.outcomes[i].retries, b.outcomes[i].retries);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

// --- Crash at every instrumented phase ---------------------------------------

TEST(CrashMatrixTest, EveryPhaseRecoversWithZeroViolations) {
  SimMetrics baseline = RunOnce({});
  EXPECT_EQ(baseline.scheduler_crashes, 0);
  EXPECT_EQ(baseline.validator_violations, 0);
  ASSERT_GT(baseline.makespan, 0);

  for (int phase = 0; phase < kNumCrashPhases; ++phase) {
    SCOPED_TRACE(ToString(static_cast<CrashPhase>(phase)));
    SimMetrics metrics =
        RunOnce({{/*at=*/10, static_cast<CrashPhase>(phase)}});
    EXPECT_EQ(metrics.scheduler_crashes, 1);
    EXPECT_EQ(metrics.recoveries, 1);
    // Recovery re-validates the recovered schedule against cluster ground
    // truth: any violation means replay or reconciliation lost state.
    EXPECT_EQ(metrics.validator_violations, baseline.validator_violations);
    EXPECT_EQ(metrics.recovery_mismatches, 0);
    EXPECT_GT(metrics.makespan, 0);
    // Every job still reaches a terminal state.
    for (const JobOutcome& outcome : metrics.outcomes) {
      EXPECT_TRUE(outcome.completed || outcome.dropped)
          << "job " << outcome.id;
    }
  }
}

TEST(CrashMatrixTest, BetweenCycleCrashMatchesNoCrashRun) {
  SimMetrics baseline = RunOnce({});
  // kBeforeCycle recovers before the cycle runs; kAfterCommit crashes after
  // the cycle's effects are fully journaled. In both cases the recovered
  // scheduler must replan identically to one that never crashed.
  for (CrashPhase phase :
       {CrashPhase::kBeforeCycle, CrashPhase::kAfterCommit}) {
    SCOPED_TRACE(ToString(phase));
    SimMetrics crashed = RunOnce({{/*at=*/10, phase}});
    EXPECT_EQ(crashed.recoveries, 1);
    ExpectSameOutcomes(baseline, crashed);
  }
}

TEST(CrashMatrixTest, DoubleCrashRecoversTwice) {
  SimMetrics metrics =
      RunOnce({{/*at=*/6, CrashPhase::kSolve},
               {/*at=*/18, CrashPhase::kMidCommit}});
  EXPECT_EQ(metrics.scheduler_crashes, 2);
  EXPECT_EQ(metrics.recoveries, 2);
  EXPECT_EQ(metrics.validator_violations, 0);
  for (const JobOutcome& outcome : metrics.outcomes) {
    EXPECT_TRUE(outcome.completed || outcome.dropped) << "job " << outcome.id;
  }
}

TEST(CrashMatrixTest, CrashRunsAreDeterministic) {
  std::vector<SchedulerCrashEvent> crashes = {
      {10, CrashPhase::kCommitIntent}};
  SimMetrics a = RunOnce(crashes);
  SimMetrics b = RunOnce(crashes);
  EXPECT_EQ(a.scheduler_crashes, 1);
  EXPECT_EQ(a.journal_replayed, b.journal_replayed);
  EXPECT_EQ(a.recovery_adoptions, b.recovery_adoptions);
  ExpectSameOutcomes(a, b);
}

// --- Churn plus scheduler crashes --------------------------------------------

TEST(CrashWithChurnTest, StochasticCrashesUnderNodeChurnRecover) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  WorkloadParams params;
  params.kind = WorkloadKind::kGsMix;
  params.seed = 11;
  params.num_jobs = 12;

  FaultModelParams faults;
  faults.seed = 5;
  faults.horizon = 3000;
  faults.mtbf = 400.0;
  faults.mttr = 30.0;
  faults.scheduler_crash_mtbf = 60.0;  // dense: several crashes in-horizon
  FaultSchedule schedule = GenerateFaultSchedule(cluster, faults);
  ASSERT_FALSE(schedule.scheduler_crashes.empty());

  std::vector<Job> jobs = GenerateWorkload(cluster, params);
  RayonAdmission rayon(cluster.num_nodes());
  ApplyAdmission(cluster, jobs, &rayon);

  SimConfig config;
  config.node_failures = schedule.failures;
  config.stragglers = schedule.stragglers;
  config.scheduler_crashes = schedule.scheduler_crashes;
  config.rayon = &rayon;
  TetriSchedConfig sched_config = PinnedConfig();
  TetriScheduler scheduler(cluster, sched_config);
  Simulator sim(cluster, scheduler, std::move(jobs), config);
  SimMetrics metrics = sim.Run();

  EXPECT_GT(metrics.scheduler_crashes, 0);
  EXPECT_EQ(metrics.recoveries, metrics.scheduler_crashes);
  EXPECT_EQ(metrics.validator_violations, 0);
  EXPECT_GT(metrics.journal_replayed, 0);
  EXPECT_GT(metrics.recovery_ms.count(), 0u);
}

TEST(CrashWithChurnTest, SchedulerCrashScheduleIsSeedStable) {
  Cluster cluster = MakeUniformCluster(4, 4, 0);
  FaultModelParams faults;
  faults.seed = 7;
  faults.horizon = 2000;
  faults.mtbf = 200.0;
  faults.mttr = 40.0;
  FaultSchedule without = GenerateFaultSchedule(cluster, faults);
  faults.scheduler_crash_mtbf = 150.0;
  FaultSchedule with = GenerateFaultSchedule(cluster, faults);
  // Turning crashes on must not perturb the node-churn substreams.
  EXPECT_EQ(without.failures, with.failures);
  EXPECT_EQ(without.stragglers, with.stragglers);
  EXPECT_TRUE(without.scheduler_crashes.empty());
  EXPECT_FALSE(with.scheduler_crashes.empty());
  FaultSchedule again = GenerateFaultSchedule(cluster, faults);
  EXPECT_EQ(with.scheduler_crashes, again.scheduler_crashes);
}

// --- Recovery counters reach the metrics export -------------------------------

TEST(RecoveryMetricsTest, ExportContainsPersistInstruments) {
  std::string path =
      (std::filesystem::temp_directory_path() /
       ("tetri_recovery_metrics_" + std::to_string(::getpid()) + ".json"))
          .string();
  SimConfig config;
  config.metrics_json_path = path;
  SimMetrics metrics = RunOnce({{10, CrashPhase::kExtract}}, config);
  EXPECT_EQ(metrics.recoveries, 1);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string json = buffer.str();
  EXPECT_NE(json.find("tetrisched_persist_recoveries_total"),
            std::string::npos);
  EXPECT_NE(json.find("tetrisched_persist_journal_replayed_total"),
            std::string::npos);
  EXPECT_NE(json.find("tetrisched_persist_recovery_ms"), std::string::npos);
  EXPECT_NE(json.find("tetrisched_sim_scheduler_crashes_total"),
            std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace tetrisched
