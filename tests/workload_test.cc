// Tests for the workload generator: Table-1 compositions, load calibration,
// and reproducibility.

#include <gtest/gtest.h>

#include "src/workload/workload.h"

namespace tetrisched {
namespace {

WorkloadParams Params(WorkloadKind kind, int num_jobs = 400,
                      uint64_t seed = 7) {
  WorkloadParams params;
  params.kind = kind;
  params.num_jobs = num_jobs;
  params.seed = seed;
  return params;
}

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : cluster_(MakeUniformCluster(4, 4, 2)) {}
  Cluster cluster_;
};

TEST_F(WorkloadTest, CompositionsMatchTable1) {
  WorkloadComposition gr_slo = CompositionFor(WorkloadKind::kGrSlo);
  EXPECT_DOUBLE_EQ(gr_slo.slo_fraction, 1.0);
  WorkloadComposition gr_mix = CompositionFor(WorkloadKind::kGrMix);
  EXPECT_DOUBLE_EQ(gr_mix.slo_fraction, 0.52);
  WorkloadComposition gs_mix = CompositionFor(WorkloadKind::kGsMix);
  EXPECT_DOUBLE_EQ(gs_mix.slo_fraction, 0.70);
  WorkloadComposition gs_het = CompositionFor(WorkloadKind::kGsHet);
  EXPECT_DOUBLE_EQ(gs_het.slo_fraction, 0.75);
  EXPECT_DOUBLE_EQ(gs_het.gpu_fraction, 0.5);
  EXPECT_DOUBLE_EQ(gs_het.mpi_fraction, 0.5);
}

TEST_F(WorkloadTest, GrSloIsAllSlo) {
  std::vector<Job> jobs = GenerateWorkload(cluster_, Params(WorkloadKind::kGrSlo));
  for (const Job& job : jobs) {
    EXPECT_TRUE(job.wants_reservation);
    EXPECT_NE(job.deadline, kTimeNever);
    EXPECT_EQ(job.type, JobType::kUnconstrained);
  }
}

TEST_F(WorkloadTest, MixFractionsApproximatelyHold) {
  std::vector<Job> jobs = GenerateWorkload(cluster_, Params(WorkloadKind::kGrMix, 2000));
  int slo = 0;
  for (const Job& job : jobs) {
    slo += job.wants_reservation ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(slo) / jobs.size(), 0.52, 0.05);
}

TEST_F(WorkloadTest, HetMixSplitsGpuMpi) {
  std::vector<Job> jobs = GenerateWorkload(cluster_, Params(WorkloadKind::kGsHet, 2000));
  int gpu = 0, mpi = 0, slo = 0;
  for (const Job& job : jobs) {
    if (!job.wants_reservation) {
      EXPECT_EQ(job.type, JobType::kUnconstrained);  // BE jobs homogeneous
      continue;
    }
    ++slo;
    if (job.type == JobType::kGpu) {
      ++gpu;
      EXPECT_GT(job.slowdown, 1.0);
    } else if (job.type == JobType::kMpi) {
      ++mpi;
      EXPECT_GT(job.slowdown, 1.0);
    }
  }
  EXPECT_NEAR(static_cast<double>(gpu) / slo, 0.5, 0.06);
  EXPECT_NEAR(static_cast<double>(mpi) / slo, 0.5, 0.06);
}

TEST_F(WorkloadTest, GangsFitPreferredResources) {
  std::vector<Job> jobs = GenerateWorkload(cluster_, Params(WorkloadKind::kGsHet, 1000));
  int max_rack = cluster_.CapacityOf(cluster_.RackPartitions(0));
  int gpu_capacity = cluster_.CapacityOf(cluster_.GpuPartitions());
  for (const Job& job : jobs) {
    EXPECT_GE(job.k, 1);
    if (job.type == JobType::kMpi) {
      EXPECT_LE(job.k, max_rack);
    }
    if (job.type == JobType::kGpu) {
      EXPECT_LE(job.k, gpu_capacity);
    }
  }
}

TEST_F(WorkloadTest, LoadCalibration) {
  WorkloadParams params = Params(WorkloadKind::kGsMix, 1000);
  params.target_load = 1.0;
  std::vector<Job> jobs = GenerateWorkload(cluster_, params);
  double work = 0.0;
  SimTime last = 0;
  for (const Job& job : jobs) {
    work += static_cast<double>(job.k) * job.actual_runtime;
    last = std::max(last, job.submit);
  }
  double offered_load = work / (static_cast<double>(cluster_.num_nodes()) * last);
  EXPECT_NEAR(offered_load, 1.0, 0.25);  // Poisson arrival noise
}

TEST_F(WorkloadTest, DeadlinesHaveSlack) {
  std::vector<Job> jobs = GenerateWorkload(cluster_, Params(WorkloadKind::kGrSlo, 500));
  for (const Job& job : jobs) {
    SimTime slack_window = job.deadline - job.submit;
    EXPECT_GE(slack_window, 2 * job.actual_runtime);
    EXPECT_LE(slack_window, 4 * job.actual_runtime + 1);
  }
}

TEST_F(WorkloadTest, EstimateErrorPropagates) {
  WorkloadParams params = Params(WorkloadKind::kGsMix, 10);
  params.estimate_error = 0.5;
  std::vector<Job> jobs = GenerateWorkload(cluster_, params);
  for (const Job& job : jobs) {
    EXPECT_NEAR(static_cast<double>(job.EstimatedRuntime(true)),
                1.5 * job.actual_runtime, 1.0);
  }
}

TEST_F(WorkloadTest, SameSeedSameWorkload) {
  std::vector<Job> a = GenerateWorkload(cluster_, Params(WorkloadKind::kGsHet));
  std::vector<Job> b = GenerateWorkload(cluster_, Params(WorkloadKind::kGsHet));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit, b[i].submit);
    EXPECT_EQ(a[i].actual_runtime, b[i].actual_runtime);
    EXPECT_EQ(a[i].k, b[i].k);
    EXPECT_EQ(a[i].type, b[i].type);
  }
}

TEST_F(WorkloadTest, DifferentSeedsDiffer) {
  std::vector<Job> a = GenerateWorkload(cluster_, Params(WorkloadKind::kGsHet, 100, 1));
  std::vector<Job> b = GenerateWorkload(cluster_, Params(WorkloadKind::kGsHet, 100, 2));
  int differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].actual_runtime != b[i].actual_runtime) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 50);
}

TEST_F(WorkloadTest, DescribeMentionsCounts) {
  std::vector<Job> jobs = GenerateWorkload(cluster_, Params(WorkloadKind::kGsHet, 50));
  std::string text = DescribeWorkload(jobs);
  EXPECT_NE(text.find("50 jobs"), std::string::npos);
  EXPECT_NE(text.find("node-seconds"), std::string::npos);
}

}  // namespace
}  // namespace tetrisched
