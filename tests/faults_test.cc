// Tests for the robustness extension: stochastic fault generation, scripted
// failure-list validation, the pre-commit plan validator, the greedy
// fallback rung, and the retry/backoff + reservation re-admission path.

#include <gtest/gtest.h>

#include "src/core/plan_check.h"
#include "src/core/scheduler.h"
#include "src/rayon/rayon.h"
#include "src/sim/faults.h"
#include "src/sim/simulator.h"
#include "src/workload/workload.h"

namespace tetrisched {
namespace {

Job MakeJob(JobId id, JobType type, int k, SimDuration runtime,
            SimTime deadline, SloClass slo_class, SimTime submit = 0) {
  Job job;
  job.id = id;
  job.type = type;
  job.wants_reservation = slo_class != SloClass::kBestEffort;
  job.k = k;
  job.submit = submit;
  job.actual_runtime = runtime;
  job.slowdown = type == JobType::kUnconstrained ? 1.0 : 2.0;
  job.deadline = deadline;
  job.slo_class = slo_class;
  return job;
}

TetriSchedConfig ExactConfig(TetriSchedConfig base = TetriSchedConfig::Full()) {
  base.milp.rel_gap = 0.0;
  return base;
}

// --- Scripted failure-list validation ---------------------------------------

TEST(NormalizeFailuresTest, DropsInvalidAndOverlappingEntries) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);  // nodes 0..7
  std::vector<NodeFailure> raw = {
      {10, 0, 50},         // valid
      {20, 1, 20},         // recover_at == at
      {25, 2, 5},          // recover_at < at
      {30, 99, 60},        // node out of range
      {30, -1, 60},        // negative node
      {20, 0, 60},         // overlaps node 0's [10, 50) outage
      {50, 0, 90},         // back-to-back with [10, 50): kept
  };
  int dropped = 0;
  std::vector<NodeFailure> kept =
      NormalizeNodeFailures(cluster, raw, /*log_dropped=*/false, &dropped);
  EXPECT_EQ(dropped, 5);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], (NodeFailure{10, 0, 50}));
  EXPECT_EQ(kept[1], (NodeFailure{50, 0, 90}));
}

TEST(NormalizeFailuresTest, SortsBySubmitTime) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<NodeFailure> kept = NormalizeNodeFailures(
      cluster, {{40, 1, 60}, {10, 0, 30}}, /*log_dropped=*/false);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].at, 10);
  EXPECT_EQ(kept[1].at, 40);
}

// --- Stochastic fault generation --------------------------------------------

FaultModelParams ChurnParams() {
  FaultModelParams params;
  params.seed = 7;
  params.horizon = 2000;
  params.mtbf = 200.0;
  params.mttr = 40.0;
  return params;
}

TEST(FaultScheduleTest, SameSeedIsByteIdentical) {
  Cluster cluster = MakeUniformCluster(4, 4, 0);
  FaultModelParams params = ChurnParams();
  params.rack_burst_prob = 0.2;
  params.straggler_prob = 0.3;
  FaultSchedule a = GenerateFaultSchedule(cluster, params);
  FaultSchedule b = GenerateFaultSchedule(cluster, params);
  EXPECT_FALSE(a.failures.empty());
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.stragglers, b.stragglers);
}

TEST(FaultScheduleTest, DifferentSeedsDiffer) {
  Cluster cluster = MakeUniformCluster(4, 4, 0);
  FaultModelParams params = ChurnParams();
  FaultSchedule a = GenerateFaultSchedule(cluster, params);
  params.seed = 8;
  FaultSchedule b = GenerateFaultSchedule(cluster, params);
  EXPECT_NE(a.failures, b.failures);
}

TEST(FaultScheduleTest, ZeroMtbfDisablesChurn) {
  Cluster cluster = MakeUniformCluster(4, 4, 0);
  FaultModelParams params = ChurnParams();
  params.mtbf = 0.0;
  FaultSchedule schedule = GenerateFaultSchedule(cluster, params);
  EXPECT_TRUE(schedule.failures.empty());
  EXPECT_TRUE(schedule.stragglers.empty());
}

TEST(FaultScheduleTest, RackBurstsAreCorrelated) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  FaultModelParams params;
  params.seed = 3;
  params.horizon = 4000;
  params.mtbf = 1500.0;  // sparse churn so bursts stand out
  params.mttr = 30.0;
  params.rack_burst_prob = 1.0;
  params.rack_burst_span = 4;
  FaultSchedule schedule = GenerateFaultSchedule(cluster, params);
  ASSERT_FALSE(schedule.failures.empty());
  // Every burst takes down a whole rack: some instant must see >= 4 distinct
  // nodes (one rack's worth) failing within the burst span.
  bool found_burst = false;
  for (const NodeFailure& seedf : schedule.failures) {
    std::set<NodeId> nodes;
    for (const NodeFailure& other : schedule.failures) {
      if (other.at >= seedf.at && other.at <= seedf.at + params.rack_burst_span) {
        nodes.insert(other.node);
      }
    }
    if (nodes.size() >= 4) {
      found_burst = true;
      break;
    }
  }
  EXPECT_TRUE(found_burst);
}

// --- Plan validator ----------------------------------------------------------

class PlanCheckTest : public ::testing::Test {
 protected:
  PlanCheckTest() : cluster_(MakeUniformCluster(2, 4, 0)) {
    exact_ = MakeJob(1, JobType::kUnconstrained, 2, 40, 600,
                     SloClass::kBestEffort);
    avail_ = MakeJob(2, JobType::kAvailability, 3, 40, 600,
                     SloClass::kBestEffort);
    pending_ = {&exact_, &avail_};
    RunningHold hold;
    hold.job = 99;
    hold.counts[0] = 2;  // partition 0: 2 of 4 nodes busy
    hold.expected_end = 100;
    running_ = {hold};
  }

  Placement Place(JobId job, PartitionId partition, int count) {
    Placement placement;
    placement.job = job;
    placement.counts[partition] = count;
    placement.est_duration = 40;
    return placement;
  }

  Cluster cluster_;
  Job exact_;
  Job avail_;
  std::vector<const Job*> pending_;
  std::vector<RunningHold> running_;
};

TEST_F(PlanCheckTest, AcceptsValidPlan) {
  std::vector<Placement> plan = {Place(1, 0, 2), Place(2, 1, 2)};
  EXPECT_TRUE(ValidatePlan(cluster_, pending_, running_, plan).empty());
}

TEST_F(PlanCheckTest, RejectsUnknownJob) {
  std::vector<Placement> plan = {Place(7, 0, 2)};
  EXPECT_FALSE(ValidatePlan(cluster_, pending_, running_, plan).empty());
}

TEST_F(PlanCheckTest, RejectsDuplicatePlacement) {
  std::vector<Placement> plan = {Place(1, 0, 2), Place(1, 1, 2)};
  EXPECT_FALSE(ValidatePlan(cluster_, pending_, running_, plan).empty());
}

TEST_F(PlanCheckTest, RejectsWrongGangSize) {
  // Exact gang (k=2) placing 1 node; availability gang (k=3) placing 4.
  EXPECT_FALSE(
      ValidatePlan(cluster_, pending_, running_, {Place(1, 0, 1)}).empty());
  EXPECT_FALSE(
      ValidatePlan(cluster_, pending_, running_, {Place(2, 1, 4)}).empty());
  // Partial availability gang is legal.
  EXPECT_TRUE(
      ValidatePlan(cluster_, pending_, running_, {Place(2, 1, 1)}).empty());
}

TEST_F(PlanCheckTest, RejectsOutOfRangePartition) {
  std::vector<Placement> plan = {Place(1, 9, 2)};
  EXPECT_FALSE(ValidatePlan(cluster_, pending_, running_, plan).empty());
}

TEST_F(PlanCheckTest, RejectsOverCommittedPartition) {
  // Partition 0 has 2 free nodes (2 of 4 held); placing 2 + 2 overcommits.
  std::vector<Placement> plan = {Place(1, 0, 2), Place(2, 0, 2)};
  EXPECT_FALSE(ValidatePlan(cluster_, pending_, running_, plan).empty());
}

// --- Greedy fallback (degradation ladder) ------------------------------------

TEST(FallbackTest, ZeroSolverBudgetFallsBackToFirstFit) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  TetriSchedConfig config = ExactConfig();
  config.milp.time_limit_seconds = 0.0;  // solver returns no incumbent
  TetriScheduler scheduler(cluster, config);
  Job job =
      MakeJob(1, JobType::kUnconstrained, 4, 40, 600, SloClass::kSloAccepted);
  auto decision = scheduler.OnCycle(0, {&job}, {});
  EXPECT_EQ(decision.stats.solve_status, SolveStatus::kNoIncumbent);
  EXPECT_TRUE(decision.stats.used_fallback);
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_EQ(decision.start_now[0].job, 1);
  EXPECT_EQ(decision.start_now[0].total_nodes(), 4);
}

TEST(FallbackTest, SimulationStillMeetsSlosWithoutSolver) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 4, 40, 400, SloClass::kSloAccepted),
      MakeJob(2, JobType::kUnconstrained, 2, 30, 400, SloClass::kSloAccepted,
              4),
      MakeJob(3, JobType::kUnconstrained, 2, 20, kTimeNever,
              SloClass::kBestEffort, 8),
  };
  TetriSchedConfig config = ExactConfig();
  config.milp.time_limit_seconds = 0.0;
  TetriScheduler scheduler(cluster, config);
  SimConfig sim_config;
  Simulator sim(cluster, scheduler, jobs, sim_config);
  SimMetrics metrics = sim.Run();
  EXPECT_GT(metrics.fallback_cycles, 0);
  EXPECT_EQ(metrics.validator_violations, 0);
  EXPECT_GT(metrics.TotalSloAttainment(), 0.0);
  for (const JobOutcome& outcome : metrics.outcomes) {
    EXPECT_TRUE(outcome.completed) << "job " << outcome.id;
  }
}

TEST(FallbackTest, FirstFitRespectsRunningHolds) {
  // With the whole of partition 0 held, the fallback must place on rack 1.
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  TetriSchedConfig config = ExactConfig();
  config.milp.time_limit_seconds = 0.0;
  TetriScheduler scheduler(cluster, config);
  Job job =
      MakeJob(1, JobType::kUnconstrained, 4, 40, 600, SloClass::kBestEffort);
  RunningHold hold;
  hold.job = 50;
  hold.counts[0] = 4;
  hold.expected_end = 500;
  auto decision = scheduler.OnCycle(0, {&job}, {hold});
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_EQ(decision.start_now[0].counts.count(0), 0u);
  EXPECT_EQ(decision.start_now[0].counts.at(1), 4);
}

// --- Straggler (fail-slow) injection -----------------------------------------

TEST(StragglerTest, ActiveStragglerStretchesGangRuntime) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{MakeJob(1, JobType::kUnconstrained, 8, 40, kTimeNever,
                                SloClass::kBestEffort)};
  SimConfig config;
  config.stragglers = {{0, 0, 1000, 3.0}};  // node 0 runs 3x slow
  TetriScheduler scheduler(cluster, ExactConfig());
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  ASSERT_TRUE(metrics.outcomes[0].completed);
  EXPECT_EQ(metrics.straggler_slowed_starts, 1);
  EXPECT_EQ(metrics.outcomes[0].completion,
            metrics.outcomes[0].start_time + 120);
}

TEST(StragglerTest, ExpiredStragglerHasNoEffect) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{MakeJob(1, JobType::kUnconstrained, 8, 40, kTimeNever,
                                SloClass::kBestEffort, /*submit=*/20)};
  SimConfig config;
  config.stragglers = {{0, 0, 10, 3.0}};  // over before the job starts
  TetriScheduler scheduler(cluster, ExactConfig());
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  ASSERT_TRUE(metrics.outcomes[0].completed);
  EXPECT_EQ(metrics.straggler_slowed_starts, 0);
  EXPECT_EQ(metrics.outcomes[0].completion,
            metrics.outcomes[0].start_time + 40);
}

// --- Retry / backoff ---------------------------------------------------------

TEST(RetryTest, ExhaustedRetriesDropTheJob) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{MakeJob(1, JobType::kUnconstrained, 8, 100, kTimeNever,
                                SloClass::kBestEffort)};
  SimConfig config;
  config.max_retries = 1;
  config.retry_backoff = 0;
  config.node_failures = {{10, 0, 12}, {30, 0, 32}};
  TetriScheduler scheduler(cluster, ExactConfig());
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.failure_kills, 2);
  EXPECT_EQ(metrics.retries_exhausted, 1);
  EXPECT_TRUE(metrics.outcomes[0].dropped);
  EXPECT_FALSE(metrics.outcomes[0].completed);
  EXPECT_EQ(metrics.outcomes[0].retries, 2);
}

TEST(RetryTest, BackoffDelaysRestart) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{MakeJob(1, JobType::kUnconstrained, 8, 100, kTimeNever,
                                SloClass::kBestEffort)};
  SimConfig config;
  config.retry_backoff = 16;
  config.retry_backoff_cap = 64;
  config.node_failures = {{10, 0, 12}};
  TetriScheduler scheduler(cluster, ExactConfig());
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  ASSERT_TRUE(metrics.outcomes[0].completed);
  // Killed at 10, eligible again at 26, restarted at the next cycle.
  EXPECT_GE(metrics.outcomes[0].completion, 126);
  EXPECT_EQ(metrics.recovery_latency.count(), 1);
  EXPECT_GE(metrics.outcomes[0].recovery_latency, 16);
}

// --- Reservation re-admission ------------------------------------------------

TEST(ReadmissionTest, KilledReservationIsReplacedWhenWindowFits) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 8, 40, 400, SloClass::kSloAccepted)};
  RayonAdmission rayon(cluster.num_nodes());
  ASSERT_EQ(ApplyAdmission(cluster, jobs, &rayon), 1);
  SimConfig config;
  config.rayon = &rayon;
  config.node_failures = {{10, 0, 12}};
  TetriScheduler scheduler(cluster, ExactConfig());
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.readmissions, 1);
  EXPECT_EQ(metrics.reservations_dropped, 0);
  EXPECT_EQ(metrics.outcomes[0].readmissions, 1);
  EXPECT_TRUE(metrics.outcomes[0].MetDeadline());
}

TEST(ReadmissionTest, UnfittableWindowDropsReservation) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 8, 40, 45, SloClass::kSloAccepted)};
  RayonAdmission rayon(cluster.num_nodes());
  ASSERT_EQ(ApplyAdmission(cluster, jobs, &rayon), 1);
  SimConfig config;
  config.rayon = &rayon;
  // After the kill the remaining window can no longer hold the runtime.
  config.node_failures = {{10, 0, 12}};
  TetriScheduler scheduler(cluster, ExactConfig());
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.readmissions, 0);
  EXPECT_EQ(metrics.reservations_dropped, 1);
  EXPECT_TRUE(metrics.outcomes[0].reservation_dropped);
  EXPECT_FALSE(metrics.outcomes[0].MetDeadline());
}

// --- End-to-end determinism under churn --------------------------------------

TEST(ChurnDeterminismTest, SameSeedSameMetrics) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  WorkloadParams params;
  params.kind = WorkloadKind::kGsMix;
  params.seed = 11;
  params.num_jobs = 16;
  FaultModelParams faults;
  faults.seed = 5;
  faults.horizon = 3000;
  faults.mtbf = 300.0;
  faults.mttr = 30.0;
  faults.rack_burst_prob = 0.2;
  faults.straggler_prob = 0.2;

  auto run_once = [&]() {
    std::vector<Job> jobs = GenerateWorkload(cluster, params);
    ApplyAdmission(cluster, jobs);
    FaultSchedule schedule = GenerateFaultSchedule(cluster, faults);
    SimConfig config;
    config.node_failures = schedule.failures;
    config.stragglers = schedule.stragglers;
    // Wall-clock limits and multi-threaded solves are the only
    // nondeterminism sources; pin both.
    TetriSchedConfig sched_config = ExactConfig();
    sched_config.milp.num_threads = 1;
    sched_config.milp.time_limit_seconds = 1e9;
    TetriScheduler scheduler(cluster, sched_config);
    Simulator sim(cluster, scheduler, jobs, config);
    return sim.Run();
  };

  SimMetrics a = run_once();
  SimMetrics b = run_once();
  EXPECT_EQ(a.validator_violations, 0);
  EXPECT_EQ(b.validator_violations, 0);
  EXPECT_EQ(a.failure_kills, b.failure_kills);
  EXPECT_EQ(a.fallback_cycles, b.fallback_cycles);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].completed, b.outcomes[i].completed);
    EXPECT_EQ(a.outcomes[i].completion, b.outcomes[i].completion);
    EXPECT_EQ(a.outcomes[i].retries, b.outcomes[i].retries);
  }
}

}  // namespace
}  // namespace tetrisched
