// Tests for the delay-scheduling baseline and the never/delay/informed-wait
// comparison the paper frames in §3.2.1.

#include <gtest/gtest.h>

#include "src/baseline/delay_scheduler.h"
#include "src/core/scheduler.h"
#include "src/sim/simulator.h"

namespace tetrisched {
namespace {

Job MakeJob(JobId id, JobType type, int k, SimDuration runtime,
            SimTime deadline, SloClass slo_class, SimTime submit = 0,
            double slowdown = 3.0) {
  Job job;
  job.id = id;
  job.type = type;
  job.wants_reservation = slo_class != SloClass::kBestEffort;
  job.k = k;
  job.submit = submit;
  job.actual_runtime = runtime;
  job.slowdown = type == JobType::kUnconstrained ? 1.0 : slowdown;
  job.deadline = deadline;
  job.slo_class = slo_class;
  return job;
}

class DelaySchedulerTest : public ::testing::Test {
 protected:
  DelaySchedulerTest() : cluster_(MakeUniformCluster(2, 4, 1)) {}
  Cluster cluster_;
};

TEST_F(DelaySchedulerTest, PlacesPreferredImmediatelyWhenFree) {
  DelayScheduler scheduler(cluster_, {.delay_tolerance = 60});
  Job job = MakeJob(1, JobType::kGpu, 2, 40, 1000, SloClass::kSloAccepted);
  auto decision = scheduler.OnCycle(0, {&job}, {});
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_TRUE(decision.start_now[0].preferred_belief);
  for (const auto& [partition, count] : decision.start_now[0].counts) {
    EXPECT_TRUE(cluster_.partition(partition).has_gpu);
  }
}

TEST_F(DelaySchedulerTest, WaitsWhilePreferredBusy) {
  DelayScheduler scheduler(cluster_, {.delay_tolerance = 60});
  Job job = MakeJob(1, JobType::kGpu, 4, 40, 10000, SloClass::kSloAccepted);
  RunningHold hold;
  hold.job = 9;
  hold.counts[cluster_.GpuPartitions()[0]] = 4;
  hold.expected_end = 500;
  // Within the tolerance: waits.
  EXPECT_TRUE(scheduler.OnCycle(0, {&job}, {hold}).start_now.empty());
  EXPECT_TRUE(scheduler.OnCycle(40, {&job}, {hold}).start_now.empty());
  // Tolerance exceeded: falls back to any placement.
  auto decision = scheduler.OnCycle(64, {&job}, {hold});
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_FALSE(decision.start_now[0].preferred_belief);
}

TEST_F(DelaySchedulerTest, ZeroToleranceNeverWaits) {
  DelayScheduler scheduler(cluster_, {.delay_tolerance = 0});
  Job job = MakeJob(1, JobType::kGpu, 4, 40, 10000, SloClass::kSloAccepted);
  RunningHold hold;
  hold.job = 9;
  hold.counts[cluster_.GpuPartitions()[0]] = 4;
  hold.expected_end = 500;
  auto decision = scheduler.OnCycle(0, {&job}, {hold});
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_FALSE(decision.start_now[0].preferred_belief);
}

TEST_F(DelaySchedulerTest, MpiPrefersAnyWholeRack) {
  DelayScheduler scheduler(cluster_, {.delay_tolerance = 60});
  Job job = MakeJob(1, JobType::kMpi, 3, 40, 10000, SloClass::kSloAccepted);
  // Rack 0 partially busy; rack 1 free: must pick rack 1 rack-locally.
  RunningHold hold;
  hold.job = 9;
  hold.counts[cluster_.RackPartitions(0)[0]] = 2;
  hold.expected_end = 500;
  auto decision = scheduler.OnCycle(0, {&job}, {hold});
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_TRUE(decision.start_now[0].preferred_belief);
  RackId rack = -1;
  for (const auto& [partition, count] : decision.start_now[0].counts) {
    RackId r = cluster_.partition(partition).rack;
    EXPECT_TRUE(rack == -1 || rack == r);
    rack = r;
  }
  EXPECT_EQ(rack, 1);
}

TEST_F(DelaySchedulerTest, DeadlineBlindWaitingMissesSlos) {
  // The §3.2.1 framing end to end: GPUs busy until t=120; the SLO job's
  // deadline (140) is reachable only by starting on the slow fallback right
  // away (done by ~104), never by waiting for the fast GPUs (120+50 > 140).
  // Delay scheduling waits blindly and misses; TetriSched compares both
  // futures inside the MILP and takes the fallback immediately.
  std::vector<Job> jobs{
      MakeJob(9, JobType::kGpu, 4, 120, 100000, SloClass::kBestEffort, 0, 1.0),
      MakeJob(1, JobType::kGpu, 4, 50, 140, SloClass::kSloAccepted, 4, 2.0)};
  // Job 9 fills the GPU rack first (it is GPU-typed, runtime 120).

  auto run = [&](SchedulerPolicy& policy) {
    Simulator sim(cluster_, policy, jobs);
    return sim.Run();
  };

  DelayScheduler delay(cluster_, {.delay_tolerance = 120});
  SimMetrics delay_metrics = run(delay);

  TetriSchedConfig config = TetriSchedConfig::Full();
  config.milp.rel_gap = 0.0;
  TetriScheduler tetri(cluster_, config);
  SimMetrics tetri_metrics = run(tetri);

  EXPECT_DOUBLE_EQ(delay_metrics.AcceptedSloAttainment(), 0.0);
  EXPECT_DOUBLE_EQ(tetri_metrics.AcceptedSloAttainment(), 1.0);
}

TEST_F(DelaySchedulerTest, EndToEndCompletesWorkload) {
  std::vector<Job> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(MakeJob(i, i % 2 == 0 ? JobType::kGpu : JobType::kMpi, 2,
                           40, 10000, SloClass::kBestEffort, i * 10, 1.5));
  }
  ApplyAdmission(cluster_, jobs);
  DelayScheduler scheduler(cluster_, {.delay_tolerance = 30});
  Simulator sim(cluster_, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  for (const JobOutcome& outcome : metrics.outcomes) {
    EXPECT_TRUE(outcome.completed);
  }
}

}  // namespace
}  // namespace tetrisched
