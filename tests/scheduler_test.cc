// Tests for the TetriSched scheduler core: cycle decisions, plan-ahead
// deferral, global vs greedy, drops, and capacity safety.

#include <gtest/gtest.h>

#include "src/core/scheduler.h"

namespace tetrisched {
namespace {

Job MakeJob(JobId id, JobType type, int k, SimDuration runtime,
            SimTime deadline, SloClass slo_class, SimTime submit = 0) {
  Job job;
  job.id = id;
  job.type = type;
  job.wants_reservation = slo_class != SloClass::kBestEffort;
  job.k = k;
  job.submit = submit;
  job.actual_runtime = runtime;
  job.slowdown = type == JobType::kUnconstrained ? 1.0 : 1.5;
  job.deadline = deadline;
  job.slo_class = slo_class;
  return job;
}

TetriSchedConfig FastConfig(TetriSchedConfig base) {
  base.milp.rel_gap = 0.0;  // exact, deterministic decisions in tests
  return base;
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : cluster_(MakeUniformCluster(2, 4, 1)) {}

  Cluster cluster_;
};

TEST_F(SchedulerTest, PlacesSimpleJobNow) {
  TetriScheduler scheduler(cluster_, FastConfig(TetriSchedConfig::Full()));
  Job job = MakeJob(1, JobType::kUnconstrained, 3, 60, 600,
                    SloClass::kSloAccepted);
  auto decision = scheduler.OnCycle(0, {&job}, {});
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_EQ(decision.start_now[0].job, 1);
  EXPECT_EQ(decision.start_now[0].total_nodes(), 3);
  EXPECT_TRUE(decision.drop.empty());
}

TEST_F(SchedulerTest, EmptyQueueIsCheap) {
  TetriScheduler scheduler(cluster_, FastConfig(TetriSchedConfig::Full()));
  auto decision = scheduler.OnCycle(0, {}, {});
  EXPECT_TRUE(decision.start_now.empty());
  EXPECT_EQ(decision.stats.milp_vars, 0);
}

TEST_F(SchedulerTest, DropsUnreachableSloJob) {
  TetriScheduler scheduler(cluster_, FastConfig(TetriSchedConfig::Full()));
  Job job = MakeJob(1, JobType::kUnconstrained, 3, 100, 50,
                    SloClass::kSloAccepted);
  auto decision = scheduler.OnCycle(0, {&job}, {});
  EXPECT_TRUE(decision.start_now.empty());
  ASSERT_EQ(decision.drop.size(), 1u);
  EXPECT_EQ(decision.drop[0], 1);
}

TEST_F(SchedulerTest, GpuJobLandsOnGpuNodes) {
  TetriScheduler scheduler(cluster_, FastConfig(TetriSchedConfig::Full()));
  Job job = MakeJob(1, JobType::kGpu, 2, 60, 600, SloClass::kSloAccepted);
  auto decision = scheduler.OnCycle(0, {&job}, {});
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_TRUE(decision.start_now[0].preferred_belief);
  for (const auto& [partition, count] : decision.start_now[0].counts) {
    EXPECT_TRUE(cluster_.partition(partition).has_gpu);
  }
}

TEST_F(SchedulerTest, DefersWhenPreferredResourcesBusySoon) {
  // GPU partition busy until t=16; job deadline is lenient so waiting for
  // GPUs beats running slow elsewhere (value: fast completion wins).
  TetriScheduler scheduler(cluster_, FastConfig(TetriSchedConfig::Full()));
  Job job = MakeJob(1, JobType::kGpu, 4, 60, 1000, SloClass::kSloAccepted);
  job.slowdown = 3.0;  // fallback is very painful
  RunningHold hold;
  hold.job = 99;
  hold.slo_class = SloClass::kBestEffort;
  hold.counts[cluster_.GpuPartitions()[0]] = 4;
  hold.expected_end = 16;
  auto decision = scheduler.OnCycle(0, {&job}, {hold});
  // Nothing starts now: the job waits for its preferred nodes (plan-ahead).
  EXPECT_TRUE(decision.start_now.empty());
  EXPECT_TRUE(decision.drop.empty());
}

TEST_F(SchedulerTest, NoPlanAheadTakesFallbackImmediately) {
  // Same setup as above, but with plan-ahead disabled the scheduler cannot
  // see the GPUs freeing at t=16 and takes the slow fallback now (the
  // alsched-like TetriSched-NP behavior).
  TetriScheduler scheduler(cluster_,
                           FastConfig(TetriSchedConfig::NoPlanAhead()));
  Job job = MakeJob(1, JobType::kGpu, 4, 60, 1000, SloClass::kSloAccepted);
  job.slowdown = 3.0;
  RunningHold hold;
  hold.job = 99;
  hold.slo_class = SloClass::kBestEffort;
  hold.counts[cluster_.GpuPartitions()[0]] = 4;
  hold.expected_end = 16;
  auto decision = scheduler.OnCycle(0, {&job}, {hold});
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_FALSE(decision.start_now[0].preferred_belief);
}

TEST_F(SchedulerTest, GlobalBeatsGreedyOnFig4Instance) {
  // The §5.1 instance: 3 machines; urgent 2-gang (deadline 10), long 1-gang
  // (deadline 40), wide 3-gang (deadline 20). Global scheduling meets all
  // three; greedy (NG) in FIFO order schedules jobs 1 and 2 immediately and
  // the 3-gang misses its deadline.
  Cluster cluster = MakeUniformCluster(1, 3, 0);
  std::vector<Job> jobs;
  jobs.push_back(MakeJob(1, JobType::kUnconstrained, 2, 10, 10,
                         SloClass::kSloAccepted));
  jobs.push_back(MakeJob(2, JobType::kUnconstrained, 1, 20, 40,
                         SloClass::kSloAccepted));
  jobs.push_back(MakeJob(3, JobType::kUnconstrained, 3, 10, 20,
                         SloClass::kSloAccepted));
  std::vector<const Job*> pending{&jobs[0], &jobs[1], &jobs[2]};

  TetriSchedConfig config = FastConfig(TetriSchedConfig::Full(40));
  config.quantum = 10;
  TetriScheduler global(cluster, config);
  auto global_decision = global.OnCycle(0, pending, {});
  // Globally only job 1 starts now (jobs 2, 3 deferred to meet all
  // deadlines).
  ASSERT_EQ(global_decision.start_now.size(), 1u);
  EXPECT_EQ(global_decision.start_now[0].job, 1);

  TetriSchedConfig greedy_config = FastConfig(TetriSchedConfig::NoGlobal(40));
  greedy_config.quantum = 10;
  TetriScheduler greedy(cluster, greedy_config);
  auto greedy_decision = greedy.OnCycle(0, pending, {});
  // Greedy starts jobs 1 and 2 now, which makes job 3's deadline
  // unreachable.
  EXPECT_EQ(greedy_decision.start_now.size(), 2u);
}

TEST_F(SchedulerTest, NeverOversubscribesCapacity) {
  TetriScheduler scheduler(cluster_, FastConfig(TetriSchedConfig::Full()));
  std::vector<Job> jobs;
  std::vector<const Job*> pending;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(MakeJob(i, JobType::kUnconstrained, 3, 50, 2000,
                           SloClass::kBestEffort));
  }
  for (const Job& job : jobs) {
    pending.push_back(&job);
  }
  auto decision = scheduler.OnCycle(0, pending, {});
  int total = 0;
  for (const Placement& placement : decision.start_now) {
    total += placement.total_nodes();
  }
  EXPECT_LE(total, cluster_.num_nodes());
  EXPECT_GE(total, 6);  // at least two 3-gangs fit on 8 nodes
}

TEST_F(SchedulerTest, RespectsRunningHolds) {
  TetriScheduler scheduler(cluster_, FastConfig(TetriSchedConfig::Full()));
  // All 8 nodes held until t=100.
  std::vector<RunningHold> holds;
  for (PartitionId p = 0; p < cluster_.num_partitions(); ++p) {
    RunningHold hold;
    hold.job = 100 + p;
    hold.counts[p] = cluster_.partition(p).capacity();
    hold.expected_end = 100;
    holds.push_back(hold);
  }
  Job job = MakeJob(1, JobType::kUnconstrained, 2, 30, 10000,
                    SloClass::kBestEffort);
  auto decision = scheduler.OnCycle(0, {&job}, holds);
  EXPECT_TRUE(decision.start_now.empty());
}

TEST_F(SchedulerTest, HigherValueJobWinsContention) {
  TetriScheduler scheduler(cluster_, FastConfig(TetriSchedConfig::Full()));
  // Cluster-filling gangs: only one can run now.
  Job slo = MakeJob(1, JobType::kUnconstrained, 8, 50, 60,
                    SloClass::kSloAccepted);
  Job be = MakeJob(2, JobType::kUnconstrained, 8, 50, kTimeNever,
                   SloClass::kBestEffort);
  auto decision = scheduler.OnCycle(0, {&be, &slo}, {});
  ASSERT_GE(decision.start_now.size(), 1u);
  EXPECT_EQ(decision.start_now[0].job, 1);  // the SLO job wins
}

TEST_F(SchedulerTest, GreedyPrioritizesAcceptedSlo) {
  TetriScheduler scheduler(cluster_, FastConfig(TetriSchedConfig::NoGlobal()));
  Job be = MakeJob(1, JobType::kUnconstrained, 8, 50, kTimeNever,
                   SloClass::kBestEffort, /*submit=*/0);
  Job slo = MakeJob(2, JobType::kUnconstrained, 8, 50, 60,
                    SloClass::kSloAccepted, /*submit=*/5);
  // BE arrived first, but the accepted SLO queue has priority.
  auto decision = scheduler.OnCycle(10, {&be, &slo}, {});
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_EQ(decision.start_now[0].job, 2);
}

TEST_F(SchedulerTest, NamesReflectConfiguration) {
  EXPECT_STREQ(TetriScheduler(cluster_, TetriSchedConfig::Full()).name(),
               "TetriSched");
  EXPECT_STREQ(
      TetriScheduler(cluster_, TetriSchedConfig::NoHeterogeneity()).name(),
      "TetriSched-NH");
  EXPECT_STREQ(TetriScheduler(cluster_, TetriSchedConfig::NoGlobal()).name(),
               "TetriSched-NG");
  EXPECT_STREQ(TetriScheduler(cluster_, TetriSchedConfig::NoPlanAhead()).name(),
               "TetriSched-NP");
}

TEST_F(SchedulerTest, AdaptiveReplanningPicksUpFreedCapacity) {
  // Cycle 1: GPUs busy, job defers. Cycle 2: the hold is gone earlier than
  // promised — replanning must start the job immediately on GPUs.
  TetriScheduler scheduler(cluster_, FastConfig(TetriSchedConfig::Full()));
  Job job = MakeJob(1, JobType::kGpu, 4, 60, 1000, SloClass::kSloAccepted);
  job.slowdown = 3.0;
  RunningHold hold;
  hold.job = 99;
  hold.counts[cluster_.GpuPartitions()[0]] = 4;
  hold.expected_end = 40;
  EXPECT_TRUE(scheduler.OnCycle(0, {&job}, {hold}).start_now.empty());

  auto decision = scheduler.OnCycle(4, {&job}, {});  // hold vanished early
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_TRUE(decision.start_now[0].preferred_belief);
}

}  // namespace
}  // namespace tetrisched
