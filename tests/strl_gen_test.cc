// Tests for the STRL Generator: plan-ahead expansion, job-type plugins,
// deadline culling, and NH mode.

#include <gtest/gtest.h>

#include "src/core/strl_gen.h"

namespace tetrisched {
namespace {

Job MakeSloJob(JobId id, JobType type, int k, SimDuration runtime,
               SimTime deadline, double slowdown = 1.5) {
  Job job;
  job.id = id;
  job.type = type;
  job.wants_reservation = true;
  job.k = k;
  job.submit = 0;
  job.actual_runtime = runtime;
  job.slowdown = slowdown;
  job.deadline = deadline;
  job.slo_class = SloClass::kSloAccepted;
  return job;
}

class StrlGenTest : public ::testing::Test {
 protected:
  StrlGenTest()
      : cluster_(MakeUniformCluster(4, 4, 2)),
        generator_(cluster_, {.plan_ahead = 64, .quantum = 8}) {}

  Cluster cluster_;
  StrlGenerator generator_;
};

TEST_F(StrlGenTest, UnconstrainedJobGetsOneOptionPerStart) {
  Job job = MakeSloJob(1, JobType::kUnconstrained, 2, 20, 1000);
  OptionRegistry registry;
  auto expr = generator_.GenerateJobExpr(job, /*now=*/0, &registry);
  ASSERT_TRUE(expr.has_value());
  // Starts: 0, 8, 16, ..., 56 -> 8 options (plan-ahead 64, quantum 8).
  EXPECT_EQ(CountLeaves(*expr), 8);
  EXPECT_EQ(registry.size(), 8u);
  for (const auto& [tag, option] : registry) {
    EXPECT_EQ(option.job, 1);
    EXPECT_EQ(option.est_duration, 20);
    EXPECT_TRUE(option.preferred);
  }
}

TEST_F(StrlGenTest, MisalignedNowStartsImmediatelyThenAligns) {
  Job job = MakeSloJob(1, JobType::kUnconstrained, 2, 20, 1000);
  OptionRegistry registry;
  auto expr = generator_.GenerateJobExpr(job, /*now=*/10, &registry);
  ASSERT_TRUE(expr.has_value());
  std::vector<SimTime> starts;
  for (const auto& [tag, option] : registry) {
    starts.push_back(option.start);
  }
  std::sort(starts.begin(), starts.end());
  EXPECT_EQ(starts.front(), 10);  // immediate option
  EXPECT_EQ(starts[1], 16);       // next aligned quantum boundary
  for (size_t i = 1; i < starts.size(); ++i) {
    EXPECT_EQ(starts[i] % 8, 0);
  }
}

TEST_F(StrlGenTest, GpuJobHasPreferredAndFallback) {
  Job job = MakeSloJob(2, JobType::kGpu, 2, 20, 1000);
  OptionRegistry registry;
  auto expr = generator_.GenerateJobExpr(job, 0, &registry);
  ASSERT_TRUE(expr.has_value());
  int preferred = 0, fallback = 0;
  for (const auto& [tag, option] : registry) {
    if (option.preferred) {
      ++preferred;
      EXPECT_EQ(option.est_duration, 20);
    } else {
      ++fallback;
      EXPECT_EQ(option.est_duration, 30);  // 1.5x slowdown
    }
  }
  EXPECT_EQ(preferred, 8);
  EXPECT_EQ(fallback, 8);
}

TEST_F(StrlGenTest, MpiJobEnumeratesRacks) {
  Job job = MakeSloJob(3, JobType::kMpi, 3, 20, 1000);
  OptionRegistry registry;
  auto expr = generator_.GenerateJobExpr(job, 0, &registry);
  ASSERT_TRUE(expr.has_value());
  // Per start: 4 rack options + 1 fallback = 5; 8 starts.
  EXPECT_EQ(CountLeaves(*expr), 40);
}

TEST_F(StrlGenTest, MpiGangLargerThanRackHasOnlyFallback) {
  Job job = MakeSloJob(4, JobType::kMpi, 6, 20, 1000);  // rack holds 4
  OptionRegistry registry;
  auto expr = generator_.GenerateJobExpr(job, 0, &registry);
  ASSERT_TRUE(expr.has_value());
  for (const auto& [tag, option] : registry) {
    EXPECT_FALSE(option.preferred);
  }
}

TEST_F(StrlGenTest, DeadlineCullsLateStarts) {
  // Deadline 30, runtime 20: only starts with s+20 <= 30 survive (s in
  // {0, 8}).
  Job job = MakeSloJob(5, JobType::kUnconstrained, 2, 20, 30);
  OptionRegistry registry;
  auto expr = generator_.GenerateJobExpr(job, 0, &registry);
  ASSERT_TRUE(expr.has_value());
  EXPECT_EQ(CountLeaves(*expr), 2);
}

TEST_F(StrlGenTest, UnreachableDeadlineDropsJob) {
  Job job = MakeSloJob(6, JobType::kUnconstrained, 2, 50, 30);
  OptionRegistry registry;
  EXPECT_FALSE(generator_.GenerateJobExpr(job, 0, &registry).has_value());
}

TEST_F(StrlGenTest, DeadlinePassedDropsJob) {
  Job job = MakeSloJob(7, JobType::kUnconstrained, 2, 20, 100);
  EXPECT_FALSE(generator_.GenerateJobExpr(job, /*now=*/200, nullptr)
                   .has_value());
}

TEST_F(StrlGenTest, BestEffortJobNeverDropped) {
  Job job;
  job.id = 8;
  job.k = 1;
  job.actual_runtime = 30;
  job.slo_class = SloClass::kBestEffort;
  auto expr = generator_.GenerateJobExpr(job, /*now=*/100000, nullptr);
  ASSERT_TRUE(expr.has_value());
  EXPECT_GT(CountLeaves(*expr), 0);
}

TEST_F(StrlGenTest, NhModeCollapsesToUnconstrainedSlow) {
  StrlGenerator nh(cluster_,
                   {.plan_ahead = 64, .quantum = 8,
                    .heterogeneity_aware = false});
  Job job = MakeSloJob(9, JobType::kGpu, 2, 20, 1000);
  OptionRegistry registry;
  auto expr = nh.GenerateJobExpr(job, 0, &registry);
  ASSERT_TRUE(expr.has_value());
  EXPECT_EQ(CountLeaves(*expr), 8);  // one whole-cluster option per start
  for (const auto& [tag, option] : registry) {
    EXPECT_FALSE(option.preferred);
    EXPECT_EQ(option.est_duration, 30);  // conservative slow estimate
  }
}

TEST_F(StrlGenTest, AvailabilityJobUsesMinOverRacks) {
  Job job = MakeSloJob(10, JobType::kAvailability, 2, 20, 1000, 1.0);
  OptionRegistry registry;
  auto expr = generator_.GenerateJobExpr(job, 0, &registry);
  ASSERT_TRUE(expr.has_value());
  // 2 racks involved per start, 8 starts -> 16 leaves.
  EXPECT_EQ(CountLeaves(*expr), 16);
}

TEST_F(StrlGenTest, TagsAreStableAcrossCycles) {
  // The same absolute slot must map to the same tag regardless of `now`, so
  // deferred plans can warm-start the next cycle.
  Job job = MakeSloJob(11, JobType::kUnconstrained, 2, 20, 1000);
  OptionRegistry at0, at4;
  generator_.GenerateJobExpr(job, 0, &at0);
  generator_.GenerateJobExpr(job, 4, &at4);
  int common = 0;
  for (const auto& [tag, option] : at4) {
    auto it = at0.find(tag);
    if (it != at0.end() && option.start > 4) {
      EXPECT_EQ(it->second.start, option.start);
      ++common;
    }
  }
  EXPECT_GT(common, 4);
}

TEST_F(StrlGenTest, ValueDecreasesWithLaterCompletionForBestEffort) {
  Job job;
  job.id = 12;
  job.k = 1;
  job.actual_runtime = 16;
  job.slo_class = SloClass::kBestEffort;
  OptionRegistry registry;
  generator_.GenerateJobExpr(job, 0, &registry);
  std::map<SimTime, double> value_by_start;
  for (const auto& [tag, option] : registry) {
    value_by_start[option.start] = option.value;
  }
  double prev = 1e18;
  for (const auto& [start, value] : value_by_start) {
    EXPECT_LT(value, prev);
    prev = value;
  }
}

}  // namespace
}  // namespace tetrisched
