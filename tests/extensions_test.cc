// Tests for features beyond the paper's core evaluation: attribute-tagged
// partitions, data-locality (dynamic heterogeneity) jobs, node failure
// injection, and rescue preemption in TetriSched.

#include <gtest/gtest.h>

#include "src/core/scheduler.h"
#include "src/sim/simulator.h"

namespace tetrisched {
namespace {

Job MakeJob(JobId id, JobType type, int k, SimDuration runtime,
            SimTime deadline, SloClass slo_class, SimTime submit = 0,
            double slowdown = 2.0) {
  Job job;
  job.id = id;
  job.type = type;
  job.wants_reservation = slo_class != SloClass::kBestEffort;
  job.k = k;
  job.submit = submit;
  job.actual_runtime = runtime;
  job.slowdown = type == JobType::kUnconstrained ? 1.0 : slowdown;
  job.deadline = deadline;
  job.slo_class = slo_class;
  return job;
}

TetriSchedConfig ExactConfig(TetriSchedConfig base = TetriSchedConfig::Full()) {
  base.milp.rel_gap = 0.0;
  return base;
}

// --- Attribute tags ---------------------------------------------------------

TEST(AttrTagTest, TagsSplitPartitions) {
  std::vector<NodeSpec> nodes;
  for (int i = 0; i < 6; ++i) {
    NodeSpec node;
    node.rack = 0;
    node.attr_tag = i < 3 ? 1 : 2;  // two replica groups on one rack
    nodes.push_back(node);
  }
  Cluster cluster((std::move(nodes)));
  EXPECT_EQ(cluster.num_partitions(), 2);
  EXPECT_EQ(cluster.CapacityOf(cluster.TaggedPartitions(1)), 3);
  EXPECT_EQ(cluster.CapacityOf(cluster.TaggedPartitions(2)), 3);
  EXPECT_TRUE(cluster.TaggedPartitions(99).empty());
}

TEST(AttrTagTest, DefaultTagKeepsPartitionsMerged) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  EXPECT_EQ(cluster.num_partitions(), 2);  // one per rack, tags all 0
}

// --- Data-locality jobs ------------------------------------------------------

class DataLocalTest : public ::testing::Test {
 protected:
  DataLocalTest() {
    std::vector<NodeSpec> nodes;
    for (int i = 0; i < 8; ++i) {
      NodeSpec node;
      node.rack = i / 4;
      node.attr_tag = i < 3 ? 7 : 0;  // dataset replicas on nodes 0-2
      nodes.push_back(node);
    }
    cluster_ = std::make_unique<Cluster>(std::move(nodes));
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(DataLocalTest, SchedulerPlacesOnDataPartitions) {
  Job job = MakeJob(1, JobType::kDataLocal, 2, 60, 600,
                    SloClass::kSloAccepted);
  job.preferred_partitions = cluster_->TaggedPartitions(7);
  TetriScheduler scheduler(*cluster_, ExactConfig());
  auto decision = scheduler.OnCycle(0, {&job}, {});
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_TRUE(decision.start_now[0].preferred_belief);
  for (const auto& [partition, count] : decision.start_now[0].counts) {
    EXPECT_EQ(cluster_->partition(partition).attr_tag, 7);
  }
}

TEST_F(DataLocalTest, FallsBackWhenDataNodesBusy) {
  Job job = MakeJob(1, JobType::kDataLocal, 2, 60, 200,
                    SloClass::kSloAccepted);
  job.preferred_partitions = cluster_->TaggedPartitions(7);
  // Data nodes busy for a long time: deadline forces the remote fallback.
  RunningHold hold;
  hold.job = 9;
  hold.counts[cluster_->TaggedPartitions(7)[0]] = 3;
  hold.expected_end = 500;
  TetriScheduler scheduler(*cluster_, ExactConfig());
  auto decision = scheduler.OnCycle(0, {&job}, {hold});
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_FALSE(decision.start_now[0].preferred_belief);
}

TEST_F(DataLocalTest, EndToEndRunsFastOnData) {
  std::vector<Job> jobs{
      MakeJob(1, JobType::kDataLocal, 2, 50, 600, SloClass::kBestEffort)};
  jobs[0].wants_reservation = false;
  jobs[0].preferred_partitions = cluster_->TaggedPartitions(7);
  ApplyAdmission(*cluster_, jobs);
  TetriScheduler scheduler(*cluster_, ExactConfig());
  Simulator sim(*cluster_, scheduler, jobs);
  SimMetrics metrics = sim.Run();
  EXPECT_TRUE(metrics.outcomes[0].preferred);
  EXPECT_EQ(metrics.outcomes[0].completion - metrics.outcomes[0].start_time,
            50);
}

// --- Node failures -----------------------------------------------------------

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : cluster_(MakeUniformCluster(2, 4, 0)) {}
  Cluster cluster_;
};

TEST_F(FailureTest, FailedFreeNodeReducesCapacity) {
  // 8 nodes; 2 fail permanently at t=0; an 8-gang can never run, a 6-gang
  // can.
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 6, 40, kTimeNever,
              SloClass::kBestEffort)};
  SimConfig config;
  config.node_failures = {{0, 0, kTimeNever}, {0, 1, kTimeNever}};
  config.max_time = 5000;
  TetriScheduler scheduler(cluster_, ExactConfig());
  Simulator sim(cluster_, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  EXPECT_TRUE(metrics.outcomes[0].completed);
}

TEST_F(FailureTest, FailureKillsRunningJobWhichRetries) {
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 4, 100, kTimeNever,
              SloClass::kBestEffort)};
  SimConfig config;
  // Node 0 dies mid-run and recovers later; the job restarts and finishes.
  config.node_failures = {{40, 0, 200}};
  TetriScheduler scheduler(cluster_, ExactConfig());
  Simulator sim(cluster_, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.failure_kills, 1);
  EXPECT_TRUE(metrics.outcomes[0].completed);
  // Killed at 40, restarted from scratch on surviving nodes: completion no
  // earlier than 40 + 100.
  EXPECT_GE(metrics.outcomes[0].completion, 140);
}

TEST_F(FailureTest, RecoveryRestoresCapacity) {
  // All of rack 0 fails at t=0, recovers at t=60. A 8-gang (whole cluster)
  // job must wait for recovery.
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 8, 40, kTimeNever,
              SloClass::kBestEffort)};
  SimConfig config;
  for (NodeId node = 0; node < 4; ++node) {
    config.node_failures.push_back({0, node, 60});
  }
  TetriScheduler scheduler(cluster_, ExactConfig());
  Simulator sim(cluster_, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  EXPECT_TRUE(metrics.outcomes[0].completed);
  EXPECT_GE(metrics.outcomes[0].start_time, 60);
}

TEST_F(FailureTest, BaselineSurvivesFailuresToo) {
  std::vector<Job> jobs{
      MakeJob(1, JobType::kUnconstrained, 4, 80, 2000, SloClass::kBestEffort),
      MakeJob(2, JobType::kUnconstrained, 2, 40, kTimeNever,
              SloClass::kBestEffort, 10)};
  SimConfig config;
  config.node_failures = {{20, 2, 400}};
  TetriScheduler scheduler(cluster_, ExactConfig());
  Simulator sim(cluster_, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  for (const JobOutcome& outcome : metrics.outcomes) {
    EXPECT_TRUE(outcome.completed);
  }
}

// --- Rescue preemption (extension) -------------------------------------------

class PreemptionTest : public ::testing::Test {
 protected:
  PreemptionTest() : cluster_(MakeUniformCluster(2, 4, 0)) {}
  Cluster cluster_;
};

TEST_F(PreemptionTest, RescuesStrandedSloJob) {
  // A long BE hog holds the whole cluster until t=500; an accepted SLO job
  // with deadline 80 (runtime 60 -> latest start ~20) is stranded.
  Job slo = MakeJob(1, JobType::kUnconstrained, 8, 60, 80,
                    SloClass::kSloAccepted);
  RunningHold hog;
  hog.job = 9;
  hog.slo_class = SloClass::kBestEffort;
  hog.start = 0;
  hog.counts[0] = 4;
  hog.counts[1] = 4;
  hog.expected_end = 500;

  TetriSchedConfig config = ExactConfig();
  config.enable_preemption = true;
  TetriScheduler scheduler(cluster_, config);
  auto decision = scheduler.OnCycle(16, {&slo}, {hog});
  ASSERT_FALSE(decision.preempt.empty());
  EXPECT_EQ(decision.preempt[0], 9);
  ASSERT_EQ(decision.start_now.size(), 1u);
  EXPECT_EQ(decision.start_now[0].job, 1);
}

TEST_F(PreemptionTest, DisabledByDefault) {
  Job slo = MakeJob(1, JobType::kUnconstrained, 8, 60, 80,
                    SloClass::kSloAccepted);
  RunningHold hog;
  hog.job = 9;
  hog.slo_class = SloClass::kBestEffort;
  hog.counts[0] = 4;
  hog.counts[1] = 4;
  hog.expected_end = 500;

  TetriScheduler scheduler(cluster_, ExactConfig());
  auto decision = scheduler.OnCycle(16, {&slo}, {hog});
  EXPECT_TRUE(decision.preempt.empty());
  EXPECT_TRUE(decision.start_now.empty());
}

TEST_F(PreemptionTest, NeverPreemptsForHopefulJobs) {
  // Deadline far away: no need to preempt yet.
  Job slo = MakeJob(1, JobType::kUnconstrained, 8, 60, 5000,
                    SloClass::kSloAccepted);
  RunningHold hog;
  hog.job = 9;
  hog.slo_class = SloClass::kBestEffort;
  hog.counts[0] = 4;
  hog.counts[1] = 4;
  hog.expected_end = 500;

  TetriSchedConfig config = ExactConfig();
  config.enable_preemption = true;
  TetriScheduler scheduler(cluster_, config);
  auto decision = scheduler.OnCycle(16, {&slo}, {hog});
  EXPECT_TRUE(decision.preempt.empty());
}

TEST_F(PreemptionTest, NeverPreemptsSloForSlo) {
  // The hog is itself an accepted SLO job: not preemptible.
  Job slo = MakeJob(1, JobType::kUnconstrained, 8, 60, 80,
                    SloClass::kSloAccepted);
  RunningHold hog;
  hog.job = 9;
  hog.slo_class = SloClass::kSloAccepted;
  hog.counts[0] = 4;
  hog.counts[1] = 4;
  hog.expected_end = 500;

  TetriSchedConfig config = ExactConfig();
  config.enable_preemption = true;
  TetriScheduler scheduler(cluster_, config);
  auto decision = scheduler.OnCycle(16, {&slo}, {hog});
  EXPECT_TRUE(decision.preempt.empty());
}

TEST_F(PreemptionTest, EndToEndRescueImprovesAttainment) {
  // BE hog arrives first and fills the cluster; a tight SLO job follows.
  std::vector<Job> jobs{
      MakeJob(9, JobType::kUnconstrained, 8, 400, kTimeNever,
              SloClass::kBestEffort, 0),
      MakeJob(1, JobType::kUnconstrained, 8, 60, 110, SloClass::kSloAccepted,
              8)};

  auto run = [&](bool preemption) {
    TetriSchedConfig config = ExactConfig();
    config.enable_preemption = preemption;
    TetriScheduler scheduler(cluster_, config);
    Simulator sim(cluster_, scheduler, jobs);
    return sim.Run();
  };
  SimMetrics without = run(false);
  SimMetrics with = run(true);
  EXPECT_DOUBLE_EQ(without.AcceptedSloAttainment(), 0.0);
  EXPECT_DOUBLE_EQ(with.AcceptedSloAttainment(), 1.0);
  EXPECT_GT(with.preemptions, 0);
}

}  // namespace
}  // namespace tetrisched
