// Stress tests for the LP/MILP solver on larger, structured instances with
// analytically known optima — the shapes the STRL compiler actually emits
// (assignment-like packing, interval supply chains, equality-linked
// indicators), at sizes well beyond the unit tests.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/solver/milp.h"
#include "src/solver/simplex.h"

namespace tetrisched {
namespace {

// max sum x_i with x_i <= 1 and a chain x_i + x_{i+1} <= 1.5: optimum is
// n * 0.75 for even n (alternating 1, 0.5 tiles give 1.5 per pair).
TEST(LpStressTest, ChainStructure) {
  constexpr int kN = 200;
  MilpModel model;
  for (int i = 0; i < kN; ++i) {
    model.AddContinuousVar(0.0, 1.0);
    model.AddObjectiveTerm(i, 1.0);
  }
  for (int i = 0; i + 1 < kN; ++i) {
    model.AddConstraint({{i, 1.0}, {i + 1, 1.0}},
                        ConstraintSense::kLessEqual, 1.5);
  }
  LpResult result = LpSolver(model).Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, kN * 0.75, 1e-5);
}

// Transportation structure: m sources with supply 3, n sinks with demand 2,
// profit 1 per unit moved; optimum = min(total supply, total demand).
TEST(LpStressTest, TransportationStructure) {
  constexpr int kSources = 12;
  constexpr int kSinks = 15;
  MilpModel model;
  std::vector<std::vector<VarId>> x(kSources, std::vector<VarId>(kSinks));
  for (int s = 0; s < kSources; ++s) {
    for (int t = 0; t < kSinks; ++t) {
      x[s][t] = model.AddContinuousVar(0.0, kInfinity);
      model.AddObjectiveTerm(x[s][t], 1.0);
    }
  }
  for (int s = 0; s < kSources; ++s) {
    std::vector<LinTerm> row;
    for (int t = 0; t < kSinks; ++t) {
      row.push_back({x[s][t], 1.0});
    }
    model.AddConstraint(std::move(row), ConstraintSense::kLessEqual, 3.0);
  }
  for (int t = 0; t < kSinks; ++t) {
    std::vector<LinTerm> col;
    for (int s = 0; s < kSources; ++s) {
      col.push_back({x[s][t], 1.0});
    }
    model.AddConstraint(std::move(col), ConstraintSense::kLessEqual, 2.0);
  }
  LpResult result = LpSolver(model).Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, std::min(kSources * 3.0, kSinks * 2.0), 1e-5);
}

// Equality-linked indicators at scale: the compiler's demand-row pattern.
// 60 jobs, each with P_j == 2 I_j and a shared supply sum P <= 40: optimum
// schedules exactly 20 jobs.
TEST(MilpStressTest, DemandSupplyPattern) {
  constexpr int kJobs = 60;
  MilpModel model;
  std::vector<LinTerm> supply;
  for (int j = 0; j < kJobs; ++j) {
    VarId indicator = model.AddBinaryVar();
    VarId count = model.AddIntegerVar(0.0, 2.0);
    model.AddObjectiveTerm(indicator, 1.0);
    model.AddConstraint({{count, 1.0}, {indicator, -2.0}},
                        ConstraintSense::kEqual, 0.0);
    supply.push_back({count, 1.0});
  }
  model.AddConstraint(std::move(supply), ConstraintSense::kLessEqual, 40.0);

  MilpOptions options;
  options.rel_gap = 0.0;
  options.time_limit_seconds = 20.0;
  MilpResult result = MilpSolver(model, options).Solve();
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 20.0, 1e-6);
  EXPECT_TRUE(model.IsFeasible(result.values));
}

// Weighted interval selection on one machine (classic DP-checkable MILP):
// overlapping intervals with weights; MILP must match the DP optimum.
TEST(MilpStressTest, WeightedIntervalSelection) {
  struct Interval {
    int start, end;
    double weight;
  };
  Rng rng(20160418);
  std::vector<Interval> intervals;
  for (int i = 0; i < 40; ++i) {
    int start = static_cast<int>(rng.UniformInt(0, 90));
    int length = static_cast<int>(rng.UniformInt(3, 15));
    intervals.push_back({start, start + length, rng.UniformReal(1.0, 5.0)});
  }

  // DP over sorted-by-end intervals (weighted interval scheduling).
  std::vector<int> order(intervals.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<int>(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return intervals[a].end < intervals[b].end;
  });
  std::vector<double> best(intervals.size() + 1, 0.0);
  for (size_t i = 1; i <= order.size(); ++i) {
    const Interval& current = intervals[order[i - 1]];
    // Find the last interval ending at or before current.start.
    double take = current.weight;
    for (size_t j = i - 1; j >= 1; --j) {
      if (intervals[order[j - 1]].end <= current.start) {
        take += best[j];
        break;
      }
    }
    best[i] = std::max(best[i - 1], take);
  }
  double dp_optimum = best[order.size()];

  // MILP with one supply constraint per time unit.
  MilpModel model;
  std::map<int, std::vector<LinTerm>> usage;
  for (size_t i = 0; i < intervals.size(); ++i) {
    VarId pick = model.AddBinaryVar();
    model.AddObjectiveTerm(pick, intervals[i].weight);
    for (int t = intervals[i].start; t < intervals[i].end; ++t) {
      usage[t].push_back({pick, 1.0});
    }
  }
  for (auto& [t, terms] : usage) {
    model.AddConstraint(std::move(terms), ConstraintSense::kLessEqual, 1.0);
  }

  MilpOptions options;
  options.rel_gap = 0.0;
  options.time_limit_seconds = 30.0;
  options.max_nodes = 200000;
  MilpResult result = MilpSolver(model, options).Solve();
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, dp_optimum, 1e-6);
}

// Degenerate equality system solved through phase 1 at scale.
TEST(LpStressTest, EqualityLadder) {
  constexpr int kN = 80;
  MilpModel model;
  for (int i = 0; i < kN; ++i) {
    model.AddContinuousVar(0.0, 10.0);
  }
  model.AddObjectiveTerm(kN - 1, 1.0);
  // x_0 = 1; x_{i+1} = x_i (all forced to 1).
  model.AddConstraint({{0, 1.0}}, ConstraintSense::kEqual, 1.0);
  for (int i = 0; i + 1 < kN; ++i) {
    model.AddConstraint({{i + 1, 1.0}, {i, -1.0}}, ConstraintSense::kEqual,
                        0.0);
  }
  LpResult result = LpSolver(model).Solve();
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 1.0, 1e-6);
  for (int i = 0; i < kN; ++i) {
    EXPECT_NEAR(result.values[i], 1.0, 1e-6);
  }
}

}  // namespace
}  // namespace tetrisched
