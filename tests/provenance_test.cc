// Tests for the decision-provenance subsystem (DESIGN.md §14): the shared
// JSON layer (escape round-trips, parser edge cases), the flight recorder
// (gating, ring bounds, record schema), the scheduler/simulator record
// sites (offered/chosen/rejected/culled, ladder rung counters, preemption
// and certifier counters), SLO-miss attribution, the explain reports, the
// crash-safety of the span tree, and the provenance-off byte-identical
// guarantee.

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/common/metrics.h"
#include "src/common/span.h"
#include "src/core/scheduler.h"
#include "src/obs/explain.h"
#include "src/obs/provenance.h"
#include "src/persist/persist.h"
#include "src/sim/faults.h"
#include "src/sim/simulator.h"
#include "src/sim/trace.h"
#include "src/solver/certify.h"
#include "src/solver/milp.h"
#include "src/solver/model.h"

namespace tetrisched {
namespace {

// Restores global recorder/observability state on scope exit so tests do
// not leak an enabled flag into each other.
class ProvenanceGuard {
 public:
  ProvenanceGuard()
      : prev_prov_(ProvenanceRecorder::Global().enabled()),
        prev_obs_(ObservabilityEnabled()) {}
  ~ProvenanceGuard() {
    ProvenanceRecorder::Global().SetEnabled(prev_prov_);
    SetObservabilityEnabled(prev_obs_);
  }

 private:
  bool prev_prov_;
  bool prev_obs_;
};

Job MakeJob(JobId id, int k, SimDuration runtime, SimTime deadline,
            SloClass slo_class = SloClass::kBestEffort, SimTime submit = 0) {
  Job job;
  job.id = id;
  job.k = k;
  job.submit = submit;
  job.actual_runtime = runtime;
  job.deadline = deadline;
  job.slo_class = slo_class;
  job.wants_reservation = slo_class != SloClass::kBestEffort;
  return job;
}

TetriSchedConfig ExactConfig() {
  TetriSchedConfig config = TetriSchedConfig::Full();
  config.milp.rel_gap = 0.0;
  config.milp.num_threads = 1;
  config.milp.time_limit_seconds = 1e9;
  return config;
}

std::vector<ProvenanceRecord> RecordsOfKind(
    const std::vector<ProvenanceRecord>& records, ProvKind kind) {
  std::vector<ProvenanceRecord> out;
  for (const ProvenanceRecord& record : records) {
    if (record.kind == kind) {
      out.push_back(record);
    }
  }
  return out;
}

// --- JSON layer (satellite: hardened escaping) -------------------------------

TEST(JsonTest, EscapeRoundTripsHostileStrings) {
  const std::string hostile =
      "quote\" backslash\\ newline\n tab\t cr\r bell\x07 nul-\x01- "
      "utf8 \xc3\xa9\xe2\x82\xac end";
  std::string quoted = JsonQuote(hostile);
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonParse(quoted, &value, &error)) << error;
  ASSERT_TRUE(value.is_string());
  EXPECT_EQ(value.string, hostile);
}

TEST(JsonTest, EscapeCoversEveryControlCharacter) {
  for (int c = 0; c < 0x20; ++c) {
    std::string s(1, static_cast<char>(c));
    std::string quoted = JsonQuote(s);
    // No raw control character may survive into the output.
    for (char out : quoted) {
      EXPECT_GE(static_cast<unsigned char>(out), 0x20u);
    }
    JsonValue value;
    ASSERT_TRUE(JsonParse(quoted, &value)) << "control char " << c;
    EXPECT_EQ(value.string, s);
  }
}

TEST(JsonTest, ParserEdgeCases) {
  JsonValue value;
  EXPECT_FALSE(JsonParse("{\"a\": 1} trailing", &value));
  EXPECT_FALSE(JsonParse("\"unterminated", &value));
  EXPECT_FALSE(JsonParse("{\"a\"}", &value));
  EXPECT_FALSE(JsonParse("", &value));
  EXPECT_TRUE(JsonParse("  {\"a\": [1, 2.5, -3e2], \"b\": null, "
                        "\"c\": true, \"d\": false}  ",
                        &value));
  EXPECT_EQ(value.IntOr("b", -7), -7);
  EXPECT_TRUE(value.BoolOr("c", false));
  const JsonValue* arr = value.Find("a");
  ASSERT_NE(arr, nullptr);
  ASSERT_EQ(arr->items.size(), 3u);
  EXPECT_DOUBLE_EQ(arr->items[2].number, -300.0);
  // Surrogate pairs decode to UTF-8.
  ASSERT_TRUE(JsonParse("\"\\ud83d\\ude00\"", &value));
  EXPECT_EQ(value.string, "\xf0\x9f\x98\x80");
  // Nesting bomb is rejected, not stack-overflowed.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonParse(deep, &value));
}

TEST(JsonTest, MetricsExportEscapesHostileNames) {
  MetricsRegistry registry;
  registry.GetCounter("we\"ird\nname\\x")->Increment(3);
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonParse(registry.ToJson(), &value, &error)) << error;
  const JsonValue* counters = value.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->IntOr("we\"ird\nname\\x", -1), 3);
}

TEST(JsonTest, ChromeTraceExportParses) {
  ProvenanceGuard guard;
  SetObservabilityEnabled(true);
  SpanCollector::Global().Clear();
  { TETRI_SPAN("test.provenance_trace"); }
  SetObservabilityEnabled(false);
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonParse(SpanCollector::Global().ToChromeTraceJson(), &value,
                        &error))
      << error;
  const JsonValue* events = value.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->items.empty());
  EXPECT_EQ(events->items[0].StringOr("name", ""), "test.provenance_trace");
  SpanCollector::Global().Clear();
}

// --- Recorder core -----------------------------------------------------------

TEST(ProvenanceRecorderTest, DisabledRecordsNothing) {
  ProvenanceGuard guard;
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  recorder.Enable();
  recorder.Disable();
  size_t before = recorder.size();
  ProvenanceRecord record;
  record.kind = ProvKind::kArrival;
  record.job = 1;
  recorder.Record(record);
  EXPECT_EQ(recorder.size(), before);
}

TEST(ProvenanceRecorderTest, RingIsBoundedAndCountsEvictions) {
  ProvenanceGuard guard;
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  recorder.Enable(/*ring_capacity=*/16);
  EXPECT_EQ(recorder.ring_capacity(), 16u);
  for (int i = 0; i < 40; ++i) {
    ProvenanceRecord record;
    record.kind = ProvKind::kArrival;
    record.job = i;
    recorder.Record(std::move(record));
  }
  EXPECT_EQ(recorder.size(), 16u);
  EXPECT_EQ(recorder.dropped(), 24u);
  std::vector<ProvenanceRecord> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 16u);
  // Oldest evicted first: the survivors are jobs 24..39 in seq order.
  EXPECT_EQ(snapshot.front().job, 24);
  EXPECT_EQ(snapshot.back().job, 39);
  EXPECT_LT(snapshot.front().seq, snapshot.back().seq);
  // Per-job summaries survive ring eviction.
  EXPECT_EQ(recorder.Summary(0).offered_cycles, 0);
  recorder.Disable();
}

TEST(ProvenanceRecorderTest, RecordJsonRoundTrips) {
  ProvenanceRecord record;
  record.kind = ProvKind::kRejected;
  record.seq = 7;
  record.cycle = 3;
  record.time = 42;
  record.job = 11;
  record.value = 2.5;
  record.label = "capa\"city\n";
  record.detail = JsonObj().Field("alternatives", 4).str();
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonParse(ProvenanceRecordToJson(record), &value, &error))
      << error;
  EXPECT_EQ(value.StringOr("kind", ""), "rejected");
  EXPECT_EQ(value.IntOr("seq", -1), 7);
  EXPECT_EQ(value.IntOr("cycle", -1), 3);
  EXPECT_EQ(value.IntOr("time", -1), 42);
  EXPECT_EQ(value.IntOr("job", -1), 11);
  EXPECT_DOUBLE_EQ(value.NumberOr("value", 0.0), 2.5);
  EXPECT_EQ(value.StringOr("label", ""), "capa\"city\n");
  const JsonValue* detail = value.Find("detail");
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->IntOr("alternatives", -1), 4);
}

// --- Scheduler record sites --------------------------------------------------

TEST(SchedulerProvenanceTest, OfferedAndChosenCarryAlternatives) {
  ProvenanceGuard guard;
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  recorder.Enable();
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  Job job = MakeJob(1, 2, 60, 600, SloClass::kSloAccepted);
  TetriScheduler scheduler(cluster, ExactConfig());
  auto decision = scheduler.OnCycle(0, {&job}, {});
  recorder.Disable();
  ASSERT_EQ(decision.start_now.size(), 1u);

  std::vector<ProvenanceRecord> records = recorder.Snapshot();
  std::vector<ProvenanceRecord> offered =
      RecordsOfKind(records, ProvKind::kOffered);
  ASSERT_EQ(offered.size(), 1u);
  EXPECT_EQ(offered[0].job, 1);
  EXPECT_GE(offered[0].value, 1.0);  // number of alternatives
  JsonValue alts;
  ASSERT_TRUE(JsonParse(offered[0].detail, &alts));
  ASSERT_TRUE(alts.is_array());
  ASSERT_FALSE(alts.items.empty());
  // Every alternative carries its kind, geometry, and utility.
  for (const JsonValue& alt : alts.items) {
    EXPECT_FALSE(alt.StringOr("kind", "").empty());
    EXPECT_GE(alt.IntOr("k", -1), 1);
    EXPECT_GT(alt.NumberOr("value", 0.0), 0.0);
  }

  std::vector<ProvenanceRecord> chosen =
      RecordsOfKind(records, ProvKind::kChosen);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].job, 1);
  EXPECT_GT(chosen[0].value, 0.0);  // objective contribution
  JsonValue detail;
  ASSERT_TRUE(JsonParse(chosen[0].detail, &detail));
  EXPECT_EQ(detail.IntOr("nodes", -1), 2);
  std::vector<ProvenanceRecord> solves =
      RecordsOfKind(records, ProvKind::kSolve);
  ASSERT_EQ(solves.size(), 1u);
  EXPECT_EQ(solves[0].job, -1);
  EXPECT_EQ(solves[0].label, "optimal");
}

TEST(SchedulerProvenanceTest, SaturatedClusterYieldsCapacityRejection) {
  ProvenanceGuard guard;
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  recorder.Enable();
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  // A hog holds every node far past the job's deadline; preemption stays
  // disabled, so the job is offered but cannot be allocated anywhere.
  Job job = MakeJob(1, 4, 60, 80, SloClass::kSloAccepted);
  RunningHold hog;
  hog.job = 9;
  hog.slo_class = SloClass::kBestEffort;
  hog.counts[0] = 4;
  hog.counts[1] = 4;
  hog.expected_end = 500;
  TetriScheduler scheduler(cluster, ExactConfig());
  auto decision = scheduler.OnCycle(16, {&job}, {hog});
  recorder.Disable();
  EXPECT_TRUE(decision.start_now.empty());

  std::vector<ProvenanceRecord> rejected =
      RecordsOfKind(recorder.Snapshot(), ProvKind::kRejected);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].job, 1);
  EXPECT_EQ(rejected[0].label, "capacity");
  JsonValue detail;
  ASSERT_TRUE(JsonParse(rejected[0].detail, &detail));
  EXPECT_GE(detail.IntOr("alternatives", 0), 1);
  EXPECT_EQ(detail.IntOr("blocked", -1), detail.IntOr("alternatives", -2));
  JobProvSummary summary = recorder.Summary(1);
  EXPECT_EQ(summary.rejected_cycles, 1);
  EXPECT_EQ(summary.capacity_cycles, 1);
}

TEST(SchedulerProvenanceTest, InfeasibleDeadlineIsCulled) {
  ProvenanceGuard guard;
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  recorder.Enable();
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  // Deadline already unreachable: runtime 100 but only 10 s of window left.
  Job job = MakeJob(1, 2, 100, 10, SloClass::kSloUnreserved);
  TetriScheduler scheduler(cluster, ExactConfig());
  auto decision = scheduler.OnCycle(0, {&job}, {});
  recorder.Disable();
  ASSERT_EQ(decision.drop.size(), 1u);
  EXPECT_EQ(decision.drop[0], 1);

  std::vector<ProvenanceRecord> culled =
      RecordsOfKind(recorder.Snapshot(), ProvKind::kCulled);
  ASSERT_EQ(culled.size(), 1u);
  EXPECT_EQ(culled[0].job, 1);
  EXPECT_TRUE(recorder.Summary(1).culled);
}

TEST(SchedulerProvenanceTest, LadderRungWalkHitsDedicatedCounters) {
  ProvenanceGuard guard;
  MetricsRegistry& registry = GlobalMetrics();
  Counter* rung0 = registry.GetCounter("tetrisched_ladder_rung0_cycles_total");
  Counter* rung1 = registry.GetCounter("tetrisched_ladder_rung1_cycles_total");
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  Job job = MakeJob(1, 2, 60, 600, SloClass::kSloAccepted);

  // Rung 0: a healthy exact solve.
  int64_t rung0_before = rung0->value();
  TetriScheduler healthy(cluster, ExactConfig());
  healthy.OnCycle(0, {&job}, {});
  EXPECT_EQ(rung0->value(), rung0_before + 1);

  // Rung 1: a zero time budget leaves the solver without an incumbent, so
  // the cycle degrades to the greedy first-fit pass.
  recorder.Enable();
  int64_t rung1_before = rung1->value();
  TetriSchedConfig starved_config = ExactConfig();
  starved_config.milp.time_limit_seconds = 0.0;
  TetriScheduler starved(cluster, starved_config);
  auto decision = starved.OnCycle(0, {&job}, {});
  recorder.Disable();
  EXPECT_EQ(rung1->value(), rung1_before + 1);
  EXPECT_TRUE(decision.stats.used_fallback);
  EXPECT_EQ(decision.stats.ladder_rung, 1);
  std::vector<ProvenanceRecord> fallbacks =
      RecordsOfKind(recorder.Snapshot(), ProvKind::kFallback);
  ASSERT_FALSE(fallbacks.empty());
  EXPECT_EQ(fallbacks[0].label, "no-incumbent");
  EXPECT_DOUBLE_EQ(fallbacks[0].value, 1.0);
}

TEST(SchedulerProvenanceTest, RescuePreemptionCountsAndExplains) {
  ProvenanceGuard guard;
  Counter* preemptions =
      GlobalMetrics().GetCounter("tetrisched_preemptions_total");
  int64_t before = preemptions->value();
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  recorder.Enable();
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  Job slo = MakeJob(1, 8, 60, 80, SloClass::kSloAccepted);
  RunningHold hog;
  hog.job = 9;
  hog.slo_class = SloClass::kBestEffort;
  hog.start = 0;
  hog.counts[0] = 4;
  hog.counts[1] = 4;
  hog.expected_end = 500;
  TetriSchedConfig config = ExactConfig();
  config.enable_preemption = true;
  TetriScheduler scheduler(cluster, config);
  auto decision = scheduler.OnCycle(16, {&slo}, {hog});
  recorder.Disable();
  ASSERT_FALSE(decision.preempt.empty());
  EXPECT_GT(preemptions->value(), before);

  std::vector<ProvenanceRecord> rescues =
      RecordsOfKind(recorder.Snapshot(), ProvKind::kPreemptRescue);
  ASSERT_EQ(rescues.size(), 1u);
  EXPECT_EQ(rescues[0].job, 1);
  EXPECT_EQ(rescues[0].label, "youngest-be-first");
  JsonValue detail;
  ASSERT_TRUE(JsonParse(rescues[0].detail, &detail));
  const JsonValue* victims = detail.Find("victims");
  ASSERT_NE(victims, nullptr);
  ASSERT_EQ(victims->items.size(), 1u);
  EXPECT_DOUBLE_EQ(victims->items[0].number, 9.0);
}

TEST(SchedulerProvenanceTest, CertifierRejectIncrementsCounter) {
  Counter* rejects =
      GlobalMetrics().GetCounter("tetrisched_certifier_rejects_total");
  int64_t before = rejects->value();
  // max x with x <= 1: solve, then corrupt the incumbent so certification
  // must refuse it.
  MilpModel model;
  VarId x = model.AddBinaryVar("x");
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint({{x, 1.0}}, ConstraintSense::kLessEqual, 1.0);
  MilpOptions options;
  options.num_threads = 1;
  MilpResult result = MilpSolver(model, options).Solve();
  ASSERT_TRUE(result.HasSolution());
  result.values[x] = 7.0;  // out of bounds and off the claimed objective
  CertifyReport report = CertifyPlan(model, result, options);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.failure.empty());
  EXPECT_GT(rejects->value(), before);
}

// --- Simulator integration ---------------------------------------------------

SimMetrics RunChurnSim(SimConfig config, std::vector<Job>* jobs_out = nullptr) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  // One SLO gang killed mid-flight by a node failure (backoff pushes the
  // restart past the deadline) plus a best-effort job for contrast.
  std::vector<Job> jobs{MakeJob(1, 4, 60, 80, SloClass::kBestEffort),
                        MakeJob(2, 2, 30, 400, SloClass::kBestEffort, 4)};
  jobs[0].wants_reservation = true;
  ApplyAdmission(cluster, jobs);
  config.node_failures = {{/*at=*/30, /*node=*/0, /*recover_at=*/200}};
  if (jobs_out != nullptr) {
    *jobs_out = jobs;
  }
  TetriScheduler scheduler(cluster, ExactConfig());
  Simulator sim(cluster, scheduler, jobs, config);
  return sim.Run();
}

TEST(SimProvenanceTest, ChurnKilledSloMissIsAttributed) {
  ProvenanceGuard guard;
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  SimConfig config;
  config.provenance = SimConfig::ProvenanceMode::kOn;
  SimMetrics metrics = RunChurnSim(config);
  ASSERT_GE(metrics.failure_kills, 1);
  ASSERT_FALSE(metrics.outcomes[0].MetDeadline());

  std::vector<ProvenanceRecord> records = recorder.Snapshot();
  EXPECT_FALSE(RecordsOfKind(records, ProvKind::kArrival).empty());
  EXPECT_FALSE(RecordsOfKind(records, ProvKind::kStart).empty());
  std::vector<ProvenanceRecord> kills =
      RecordsOfKind(records, ProvKind::kFailureKill);
  ASSERT_FALSE(kills.empty());
  EXPECT_EQ(kills[0].job, 1);
  JsonValue kill_detail;
  ASSERT_TRUE(JsonParse(kills[0].detail, &kill_detail));
  EXPECT_EQ(kill_detail.IntOr("node", -1), 0);
  EXPECT_GE(kill_detail.IntOr("eligible_at", -1), 30);

  std::vector<ProvenanceRecord> misses =
      RecordsOfKind(records, ProvKind::kSloMiss);
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0].job, 1);
  EXPECT_EQ(misses[0].label, "churn-killed");
  JsonValue evidence;
  ASSERT_TRUE(JsonParse(misses[0].detail, &evidence));
  EXPECT_GE(evidence.IntOr("kills", 0), 1);
  // Attribution is also directly queryable.
  EXPECT_EQ(recorder.AttributeSloMiss(1), SloMissCause::kChurnKilled);
}

TEST(SimProvenanceTest, ExportsJsonlAndExplainReportsAnswer) {
  ProvenanceGuard guard;
  const char* path = "provenance_test_export.jsonl";
  SimConfig config;
  config.provenance_jsonl_path = path;  // kAuto: path turns the recorder on
  RunChurnSim(config);

  ProvLog log;
  std::string error;
  ASSERT_TRUE(LoadProvenanceJsonl(path, &log, &error)) << error;
  EXPECT_EQ(log.malformed_lines, 0u);
  ASSERT_FALSE(log.events.empty());
  // Every line parsed back with a known kind and monotone seq.
  for (size_t i = 1; i < log.events.size(); ++i) {
    EXPECT_LT(log.events[i - 1].seq, log.events[i].seq);
  }

  std::string job_report = ExplainJob(log, 1);
  EXPECT_NE(job_report.find("offered"), std::string::npos);
  EXPECT_NE(job_report.find("slo-miss"), std::string::npos);
  std::string miss_report = ExplainSloMisses(log);
  EXPECT_NE(miss_report.find("churn-killed"), std::string::npos);
  EXPECT_NE(miss_report.find("job 1"), std::string::npos);
  EXPECT_FALSE(ExplainCycle(log, 0).empty());
  EXPECT_FALSE(ExplainSummary(log).empty());
  // Unknown job still gets a non-empty answer.
  EXPECT_FALSE(ExplainJob(log, 999).empty());

  // Tolerant parsing: a torn trailing line is counted, not fatal.
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  ProvLog torn = ParseProvenanceJsonl(buf.str() + "{\"kind\": \"arr");
  EXPECT_EQ(torn.malformed_lines, 1u);
  EXPECT_EQ(torn.events.size(), log.events.size());
  std::remove(path);
}

TEST(SimProvenanceTest, ReplayRecordsSurfaceDuringRecovery) {
  ProvenanceGuard guard;
  ProvenanceRecorder& recorder = ProvenanceRecorder::Global();
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{MakeJob(1, 2, 60, 600, SloClass::kBestEffort),
                        MakeJob(2, 2, 60, 600, SloClass::kBestEffort, 8)};
  ApplyAdmission(cluster, jobs);
  SimConfig config;
  config.provenance = SimConfig::ProvenanceMode::kOn;
  config.scheduler_crashes = {{/*at=*/10, CrashPhase::kAfterCommit}};
  TetriSchedConfig sched_config = ExactConfig();
  config.policy_factory = [&cluster, sched_config]() {
    return std::make_unique<TetriScheduler>(cluster, sched_config);
  };
  TetriScheduler scheduler(cluster, sched_config);
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  ASSERT_EQ(metrics.scheduler_crashes, 1);

  std::vector<ProvenanceRecord> records = recorder.Snapshot();
  std::vector<ProvenanceRecord> crashes =
      RecordsOfKind(records, ProvKind::kCrash);
  ASSERT_EQ(crashes.size(), 1u);
  EXPECT_EQ(crashes[0].label, ToString(CrashPhase::kAfterCommit));
  std::vector<ProvenanceRecord> recoveries =
      RecordsOfKind(records, ProvKind::kRecovery);
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_EQ(static_cast<int>(recoveries[0].value), metrics.journal_replayed);
  // One kReplay per replayed journal record, labeled with the record kind.
  std::vector<ProvenanceRecord> replays =
      RecordsOfKind(records, ProvKind::kReplay);
  EXPECT_EQ(static_cast<int>(replays.size()), metrics.journal_replayed);
  for (const ProvenanceRecord& replay : replays) {
    EXPECT_FALSE(replay.label.empty());
  }
}

// --- Crash safety of the span tree (satellite) -------------------------------

TEST(SimProvenanceTest, CrashMidCycleLeavesNoTornSpanTree) {
  ProvenanceGuard guard;
  SetObservabilityEnabled(false);
  const char* path = "provenance_test_crash_trace.json";
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs{MakeJob(1, 2, 60, 600, SloClass::kBestEffort),
                        MakeJob(2, 2, 60, 600, SloClass::kBestEffort, 8)};
  ApplyAdmission(cluster, jobs);
  SimConfig config;
  config.trace_json_path = path;
  // The crash hook throws out of the middle of the solve span; RAII span
  // guards must still close every open span during unwinding.
  config.scheduler_crashes = {{/*at=*/6, CrashPhase::kSolve}};
  TetriSchedConfig sched_config = ExactConfig();
  config.policy_factory = [&cluster, sched_config]() {
    return std::make_unique<TetriScheduler>(cluster, sched_config);
  };
  TetriScheduler scheduler(cluster, sched_config);
  Simulator sim(cluster, scheduler, jobs, config);
  SimMetrics metrics = sim.Run();
  ASSERT_EQ(metrics.scheduler_crashes, 1);
  EXPECT_FALSE(span_internal::SpanCrashHookArmed());

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue value;
  std::string error;
  ASSERT_TRUE(JsonParse(buf.str(), &value, &error)) << error;
  const JsonValue* events = value.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->items.empty());
  bool saw_cycle = false;
  for (const JsonValue& event : events->items) {
    // A torn span would export with a missing/negative duration.
    EXPECT_FALSE(event.StringOr("name", "").empty());
    EXPECT_GE(event.IntOr("dur", -1), 0);
    EXPECT_GE(event.IntOr("ts", -1), 0);
    saw_cycle |= event.StringOr("name", "") == "scheduler.cycle";
  }
  EXPECT_TRUE(saw_cycle);
  std::remove(path);
}

// --- Provenance-off is byte-identical ----------------------------------------

std::string RunScheduleCsv(const SimConfig& base_config) {
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(MakeJob(i + 1, 1 + i % 3, 40 + 10 * (i % 2), 2000,
                           SloClass::kBestEffort, 5 * i));
    jobs[i].wants_reservation = i % 2 == 0;
  }
  ApplyAdmission(cluster, jobs);
  TetriScheduler scheduler(cluster, ExactConfig());
  SimTrace trace;
  SimConfig config = base_config;
  config.trace = &trace;
  Simulator sim(cluster, scheduler, jobs, config);
  sim.Run();
  return trace.ToCsv();
}

// Drops the trailing wall-clock column so only decisions are compared.
std::string StripTimingColumn(const std::string& csv) {
  std::istringstream in(csv);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    out += line.substr(0, line.rfind(','));
    out += '\n';
  }
  return out;
}

TEST(SimProvenanceTest, RecorderOnDoesNotChangeSchedule) {
  ProvenanceGuard guard;
  ProvenanceRecorder::Global().SetEnabled(false);
  SimConfig off;
  off.provenance = SimConfig::ProvenanceMode::kOff;
  std::string baseline = StripTimingColumn(RunScheduleCsv(off));

  SimConfig on;
  on.provenance = SimConfig::ProvenanceMode::kOn;
  std::string with_recorder = StripTimingColumn(RunScheduleCsv(on));
  EXPECT_EQ(baseline, with_recorder);
  // Run() restored the recorder state it flipped.
  EXPECT_FALSE(ProvenanceRecorder::Global().enabled());

  SimConfig exported;
  exported.provenance_jsonl_path = "provenance_test_identical.jsonl";
  std::string with_export = StripTimingColumn(RunScheduleCsv(exported));
  EXPECT_EQ(baseline, with_export);
  std::remove("provenance_test_identical.jsonl");
}

}  // namespace
}  // namespace tetrisched
