// Tests for the solver's component decomposition layer (solver/decompose.h,
// DESIGN.md §12).
//
// The contract under test: block-diagonal models split into their blocks and
// the stitched result matches the monolithic solve (exactly at rel_gap = 0,
// within the gap otherwise); single-component models take the bypass and are
// bit-identical to the monolithic search; the decomposed solve is
// deterministic even with num_threads > 1 (each component runs
// single-threaded); presolve fixings sever couplings the raw model hides;
// and cross-component status merging is conservative.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/availability.h"
#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/compiler/compiler.h"
#include "src/solver/decompose.h"
#include "src/solver/milp.h"
#include "src/solver/presolve.h"
#include "src/strl/strl.h"

namespace tetrisched {
namespace {

// One demand/supply block in the compiled-STRL shape: per job a binary
// indicator and an integer count tied by P == 2 I, all counts sharing one
// supply row. Blocks share nothing, so the model is exactly block-diagonal.
void AddDemandSupplyBlock(MilpModel& model, int jobs, double supply) {
  std::vector<LinTerm> supply_row;
  for (int j = 0; j < jobs; ++j) {
    VarId indicator = model.AddBinaryVar();
    VarId count = model.AddIntegerVar(0.0, 2.0);
    model.AddObjectiveTerm(indicator, 1.0);
    model.AddConstraint({{count, 1.0}, {indicator, -2.0}},
                        ConstraintSense::kEqual, 0.0);
    supply_row.push_back({count, 1.0});
  }
  model.AddConstraint(std::move(supply_row), ConstraintSense::kLessEqual,
                      supply);
}

// One random binary-packing block (the solver_parallel_test generator,
// confined to fresh variables so each call adds an independent component).
void AddRandomPackingBlock(MilpModel& model, Rng& rng, int num_vars,
                           int num_cons) {
  std::vector<VarId> vars;
  for (int v = 0; v < num_vars; ++v) {
    VarId id = model.AddBinaryVar();
    model.AddObjectiveTerm(id, rng.UniformReal(-5.0, 10.0));
    vars.push_back(id);
  }
  for (int c = 0; c < num_cons; ++c) {
    std::vector<LinTerm> terms;
    for (VarId id : vars) {
      if (rng.Bernoulli(0.6)) {
        terms.push_back({id, rng.UniformReal(-3.0, 5.0)});
      }
    }
    if (!terms.empty()) {
      model.AddConstraint(std::move(terms), ConstraintSense::kLessEqual,
                          rng.UniformReal(0.0, 6.0));
    }
  }
}

TEST(DecomposeDetectTest, FindsBlockDiagonalComponents) {
  MilpModel model;
  AddDemandSupplyBlock(model, 4, 5.0);
  AddDemandSupplyBlock(model, 3, 3.0);
  AddDemandSupplyBlock(model, 5, 7.0);

  Decomposition decomp = DetectComponents(model);
  EXPECT_FALSE(decomp.bypass);
  ASSERT_EQ(decomp.num_components, 3);
  EXPECT_TRUE(decomp.Splits());
  EXPECT_EQ(decomp.component_vars[0], 8);
  EXPECT_EQ(decomp.component_vars[1], 6);
  EXPECT_EQ(decomp.component_vars[2], 10);
  EXPECT_EQ(decomp.component_rows[0], 5);   // 4 demand + 1 supply
  EXPECT_EQ(decomp.component_rows[1], 4);
  EXPECT_EQ(decomp.component_rows[2], 6);
  EXPECT_EQ(decomp.largest_component_vars(), 10);
  // Components are numbered in ascending first-variable order, and every
  // row lands in its first variable's component.
  for (int c = 0; c < model.num_constraints(); ++c) {
    EXPECT_EQ(decomp.row_component[c],
              decomp.var_component[model.constraint_terms(c)[0].var]);
  }
}

TEST(DecomposeDetectTest, FreeVariablesJoinNoComponent) {
  MilpModel model;
  VarId free_var = model.AddBinaryVar();  // e.g. the compiler's root indicator
  model.AddObjectiveTerm(free_var, 0.0);
  AddDemandSupplyBlock(model, 2, 3.0);

  Decomposition decomp = DetectComponents(model);
  EXPECT_EQ(decomp.num_components, 1);
  EXPECT_EQ(decomp.var_component[free_var], -1);
  EXPECT_FALSE(decomp.Splits());  // one row-induced component: bypass
}

TEST(DecomposeMergeTest, MilpStatusWorstClaimWins) {
  using S = MilpStatus;
  EXPECT_EQ(MergeMilpStatus(S::kOptimal, S::kOptimal), S::kOptimal);
  EXPECT_EQ(MergeMilpStatus(S::kOptimal, S::kGapLimit), S::kGapLimit);
  EXPECT_EQ(MergeMilpStatus(S::kGapLimit, S::kFeasible), S::kFeasible);
  EXPECT_EQ(MergeMilpStatus(S::kFeasible, S::kNoSolution), S::kNoSolution);
  EXPECT_EQ(MergeMilpStatus(S::kNoSolution, S::kUnbounded), S::kUnbounded);
  EXPECT_EQ(MergeMilpStatus(S::kOptimal, S::kInfeasible), S::kInfeasible);
  EXPECT_EQ(MergeMilpStatus(S::kInfeasible, S::kUnbounded), S::kInfeasible);
  // Order independence.
  EXPECT_EQ(MergeMilpStatus(S::kGapLimit, S::kOptimal), S::kGapLimit);
  EXPECT_EQ(MergeMilpStatus(S::kInfeasible, S::kOptimal), S::kInfeasible);
}

TEST(DecomposeMergeTest, NoIncumbentComponentDegradesOnlyItself) {
  using S = SolveStatus;
  // A failed component among successful ones -> partial plan (kTimeLimit),
  // never a full-cycle kNoIncumbent...
  EXPECT_EQ(MergeSolveStatus(S::kNoIncumbent, S::kOptimal), S::kTimeLimit);
  EXPECT_EQ(MergeSolveStatus(S::kOptimal, S::kNoIncumbent), S::kTimeLimit);
  EXPECT_EQ(MergeSolveStatus(S::kNoIncumbent, S::kGapMet), S::kTimeLimit);
  EXPECT_EQ(MergeSolveStatus(S::kStall, S::kNoIncumbent), S::kStall);
  // ...unless every component failed.
  EXPECT_EQ(MergeSolveStatus(S::kNoIncumbent, S::kNoIncumbent),
            S::kNoIncumbent);
  // Without failures the merge is the plain worst-of ladder.
  EXPECT_EQ(MergeSolveStatus(S::kOptimal, S::kOptimal), S::kOptimal);
  EXPECT_EQ(MergeSolveStatus(S::kOptimal, S::kGapMet), S::kGapMet);
  EXPECT_EQ(MergeSolveStatus(S::kGapMet, S::kTimeLimit), S::kTimeLimit);
}

TEST(SolverDecomposeTest, BlockDiagonalParityExactGap) {
  // Randomized block-diagonal instances: the stitched optimum must equal the
  // monolithic optimum exactly (rel_gap = 0 on both sides).
  for (int seed = 0; seed < 8; ++seed) {
    Rng rng(9100 + seed);
    const int blocks = 2 + static_cast<int>(rng.UniformInt(0, 3));
    MilpModel model;
    for (int b = 0; b < blocks; ++b) {
      AddRandomPackingBlock(model, rng,
                            8 + static_cast<int>(rng.UniformInt(0, 5)),
                            4 + static_cast<int>(rng.UniformInt(0, 4)));
    }

    MilpOptions options;
    options.rel_gap = 0.0;
    options.time_limit_seconds = 30.0;
    options.num_threads = 1;

    options.enable_decomposition = false;
    MilpResult mono = MilpSolver(model, options).Solve();
    options.enable_decomposition = true;
    MilpResult split = MilpSolver(model, options).Solve();

    ASSERT_TRUE(mono.HasSolution()) << "seed " << seed;
    ASSERT_TRUE(split.HasSolution()) << "seed " << seed;
    EXPECT_EQ(mono.components, 1) << "seed " << seed;
    EXPECT_GE(split.components, 2) << "seed " << seed;
    EXPECT_EQ(split.status, MilpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(split.objective, mono.objective, 1e-5) << "seed " << seed;
    EXPECT_TRUE(model.IsFeasible(split.values)) << "seed " << seed;
    EXPECT_GE(split.decompose_ms, 0.0);
    EXPECT_GT(split.max_component_ms, 0.0) << "seed " << seed;
  }
}

TEST(SolverDecomposeTest, BlockDiagonalParityWithinRelGap) {
  MilpModel model;
  AddDemandSupplyBlock(model, 12, 9.0);
  AddDemandSupplyBlock(model, 10, 7.0);
  AddDemandSupplyBlock(model, 14, 11.0);

  MilpOptions options;
  options.rel_gap = 0.10;
  options.time_limit_seconds = 30.0;

  options.enable_decomposition = false;
  MilpResult mono = MilpSolver(model, options).Solve();
  options.enable_decomposition = true;
  MilpResult split = MilpSolver(model, options).Solve();

  ASSERT_TRUE(mono.HasSolution());
  ASSERT_TRUE(split.HasSolution());
  EXPECT_EQ(split.components, 3);
  // Both incumbents are proven within rel_gap of the same optimum.
  double tolerance =
      options.rel_gap *
          std::max(std::abs(mono.objective), std::abs(split.objective)) +
      1e-6;
  EXPECT_NEAR(split.objective, mono.objective, tolerance);
  // The stitched bound stays a valid upper bound on the true optimum, which
  // the split incumbents reach within the gap.
  EXPECT_GE(split.best_bound, split.objective - 1e-6);
}

TEST(SolverDecomposeTest, SingleComponentBypassIsBitIdentical) {
  // One shared supply row couples every job: a single component. The bypass
  // must reproduce the monolithic search exactly — same node trace, same
  // LP iteration count, same incumbent vector, bit for bit.
  MilpModel model;
  AddDemandSupplyBlock(model, 24, 15.0);

  MilpOptions options;
  options.rel_gap = 0.0;
  options.time_limit_seconds = 30.0;
  options.num_threads = 1;  // deterministic node ordering on both sides

  options.enable_decomposition = false;
  MilpResult mono = MilpSolver(model, options).Solve();
  options.enable_decomposition = true;
  MilpResult bypass = MilpSolver(model, options).Solve();

  ASSERT_TRUE(mono.HasSolution());
  ASSERT_TRUE(bypass.HasSolution());
  EXPECT_EQ(bypass.components, 1);
  EXPECT_EQ(bypass.status, mono.status);
  EXPECT_EQ(bypass.solve_status, mono.solve_status);
  EXPECT_EQ(bypass.nodes, mono.nodes);
  EXPECT_EQ(bypass.lp_iterations, mono.lp_iterations);
  EXPECT_EQ(bypass.objective, mono.objective);
  EXPECT_EQ(bypass.best_bound, mono.best_bound);
  EXPECT_EQ(bypass.values, mono.values);
}

TEST(SolverDecomposeTest, DeterministicAcrossRunsWithThreads) {
  // num_threads = 4 with 4 components: the pool interleaving varies run to
  // run, but each component solves single-threaded, so the stitched result
  // must not.
  MilpModel model;
  Rng rng(9777);
  for (int b = 0; b < 4; ++b) {
    AddRandomPackingBlock(model, rng, 10, 5);
  }

  MilpOptions options;
  options.rel_gap = 0.0;
  options.time_limit_seconds = 30.0;
  options.num_threads = 4;

  MilpResult first = MilpSolver(model, options).Solve();
  MilpResult second = MilpSolver(model, options).Solve();
  ASSERT_TRUE(first.HasSolution());
  ASSERT_TRUE(second.HasSolution());
  EXPECT_EQ(first.components, 4);
  EXPECT_EQ(second.components, 4);
  EXPECT_EQ(first.nodes, second.nodes);
  EXPECT_EQ(first.lp_iterations, second.lp_iterations);
  EXPECT_EQ(first.objective, second.objective);
  EXPECT_EQ(first.best_bound, second.best_bound);
  EXPECT_EQ(first.values, second.values);
}

TEST(SolverDecomposeTest, PresolveFixingSplitsCoupledBlocks) {
  // Two blocks coupled only through a variable z that appears in a row of
  // each — plus a singleton row pinning z to 0. The raw incidence graph is
  // one component; presolve fixes z, folds it out of both coupling rows,
  // and the reduced model splits in two.
  MilpModel model;
  AddDemandSupplyBlock(model, 3, 3.0);   // vars 0..5
  AddDemandSupplyBlock(model, 3, 3.0);   // vars 6..11
  VarId z = model.AddBinaryVar("z");
  model.AddConstraint({{0, 1.0}, {z, 1.0}}, ConstraintSense::kLessEqual, 2.0);
  model.AddConstraint({{6, 1.0}, {z, 1.0}}, ConstraintSense::kLessEqual, 2.0);
  model.AddConstraint({{z, 1.0}}, ConstraintSense::kLessEqual, 0.0);

  EXPECT_EQ(DetectComponents(model).num_components, 1);

  Presolver presolver(model);
  ASSERT_FALSE(presolver.infeasible());
  ASSERT_GT(presolver.num_fixed_vars(), 0);
  EXPECT_EQ(DetectComponents(presolver.reduced()).num_components, 2);

  // End to end: the full solve runs presolve first and must report the split.
  MilpOptions options;
  options.rel_gap = 0.0;
  options.time_limit_seconds = 30.0;
  options.num_threads = 1;
  MilpResult result = MilpSolver(model, options).Solve();
  ASSERT_TRUE(result.HasSolution());
  EXPECT_EQ(result.components, 2);
  EXPECT_NEAR(result.objective, 2.0, 1e-6);  // one job per block (supply 3)
  EXPECT_TRUE(model.IsFeasible(result.values));
}

TEST(SolverDecomposeTest, InfeasibleComponentPoisonsWholeModel) {
  MilpModel model;
  AddDemandSupplyBlock(model, 3, 3.0);
  // Second "block": a binary squeezed into the empty interval [0.6, 0.4].
  VarId x = model.AddBinaryVar("x");
  model.AddObjectiveTerm(x, 1.0);
  model.AddConstraint({{x, 1.0}}, ConstraintSense::kGreaterEqual, 0.6);
  model.AddConstraint({{x, 1.0}}, ConstraintSense::kLessEqual, 0.4);

  MilpOptions options;
  options.rel_gap = 0.0;
  options.time_limit_seconds = 30.0;
  options.num_threads = 1;
  options.enable_presolve = false;  // keep the contradiction for the solver

  MilpResult result = MilpSolver(model, options).Solve();
  EXPECT_GE(result.components, 2);
  EXPECT_EQ(result.status, MilpStatus::kInfeasible);
  EXPECT_EQ(result.solve_status, SolveStatus::kNoIncumbent);
  EXPECT_FALSE(result.HasSolution());
}

TEST(SolverDecomposeTest, WarmStartSlicesAcrossComponents) {
  MilpModel model;
  AddDemandSupplyBlock(model, 8, 5.0);
  AddDemandSupplyBlock(model, 8, 5.0);

  MilpOptions options;
  options.rel_gap = 0.0;
  options.time_limit_seconds = 30.0;
  options.num_threads = 1;

  MilpResult cold = MilpSolver(model, options).Solve();
  ASSERT_TRUE(cold.HasSolution());
  EXPECT_EQ(cold.components, 2);
  // Re-solving warm-started from the optimum must reproduce it.
  MilpResult warm = MilpSolver(model, options).Solve(cold.values);
  ASSERT_TRUE(warm.HasSolution());
  EXPECT_EQ(warm.components, 2);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-6);
}

TEST(SolverDecomposeTest, CompiledAggregateSplitsAcrossDisjointRacks) {
  // Two jobs pinned to different racks never touch a common supply row;
  // with the top-level SUM compiled ungated, the cycle MILP splits and each
  // job's variables (CompiledStrl::LeafVars) land in one component.
  Cluster cluster = MakeUniformCluster(2, 3, 0);
  TimeGrid grid{.start = 0, .quantum = 10, .num_slices = 4};
  AvailabilityGrid avail(cluster, grid);

  StrlExpr root = Sum({NCk(cluster.RackPartitions(0), 2, 0, 10, 1.0, 1),
                       NCk(cluster.RackPartitions(1), 2, 0, 10, 2.0, 2)});
  CompiledStrl compiled = StrlCompiler(avail).Compile(root);

  Decomposition decomp = DetectComponents(compiled.model());
  EXPECT_EQ(decomp.num_components, 2);
  for (int leaf = 0; leaf < compiled.num_leaves(); ++leaf) {
    std::vector<VarId> vars = compiled.LeafVars(leaf);
    ASSERT_FALSE(vars.empty());
    const int32_t component = decomp.var_component[vars[0]];
    EXPECT_GE(component, 0) << "leaf " << leaf;
    for (VarId v : vars) {
      EXPECT_EQ(decomp.var_component[v], component) << "leaf " << leaf;
    }
  }

  // The two leaves map to *different* components, and the solved schedule
  // still grants both jobs.
  EXPECT_NE(decomp.var_component[compiled.LeafVars(0)[0]],
            decomp.var_component[compiled.LeafVars(1)[0]]);
  MilpOptions options;
  options.rel_gap = 0.0;
  MilpResult result = MilpSolver(compiled.model(), options).Solve();
  ASSERT_TRUE(result.HasSolution());
  EXPECT_NEAR(result.objective, 3.0, 1e-6);
  EXPECT_EQ(compiled.ExtractAllocations(result.values).size(), 2u);
}

}  // namespace
}  // namespace tetrisched
