// Tests for the runtime estimator and its in-the-loop use by the simulator.

#include <gtest/gtest.h>

#include "src/core/estimator.h"
#include "src/core/scheduler.h"
#include "src/sim/simulator.h"

namespace tetrisched {
namespace {

Job MakeJob(JobId id, JobType type, int k, SimDuration runtime) {
  Job job;
  job.id = id;
  job.type = type;
  job.k = k;
  job.actual_runtime = runtime;
  job.slowdown = 1.5;
  return job;
}

TEST(EstimatorTest, ColdClusterReturnsNothing) {
  RuntimeEstimator estimator;
  Job job = MakeJob(1, JobType::kGpu, 2, 100);
  EXPECT_FALSE(estimator.Predict(job, true).has_value());
}

TEST(EstimatorTest, WarmClusterPredicts) {
  RuntimeEstimator estimator;
  Job job = MakeJob(1, JobType::kGpu, 2, 100);
  for (int i = 0; i < 3; ++i) {
    estimator.Observe(job, true, 100);
  }
  auto prediction = estimator.Predict(job, true);
  ASSERT_TRUE(prediction.has_value());
  EXPECT_EQ(*prediction, 100);
}

TEST(EstimatorTest, PlacementQualitySeparatesClusters) {
  RuntimeEstimator estimator;
  Job job = MakeJob(1, JobType::kGpu, 2, 100);
  for (int i = 0; i < 3; ++i) {
    estimator.Observe(job, true, 100);
    estimator.Observe(job, false, 150);
  }
  EXPECT_EQ(*estimator.Predict(job, true), 100);
  EXPECT_EQ(*estimator.Predict(job, false), 150);
  EXPECT_EQ(estimator.num_clusters(), 2);
}

TEST(EstimatorTest, GangBucketsShareObservations) {
  RuntimeEstimator estimator;
  // k=3 and k=4 fall in the same power-of-two bucket.
  Job three = MakeJob(1, JobType::kMpi, 3, 100);
  Job four = MakeJob(2, JobType::kMpi, 4, 100);
  for (int i = 0; i < 3; ++i) {
    estimator.Observe(three, true, 90);
  }
  EXPECT_TRUE(estimator.Predict(four, true).has_value());
  // k=5 is the next bucket: still cold.
  Job five = MakeJob(3, JobType::kMpi, 5, 100);
  EXPECT_FALSE(estimator.Predict(five, true).has_value());
}

TEST(EstimatorTest, EmaTracksDrift) {
  RuntimeEstimator estimator({.min_observations = 1, .ema_alpha = 0.5});
  Job job = MakeJob(1, JobType::kUnconstrained, 2, 100);
  estimator.Observe(job, true, 100);
  estimator.Observe(job, true, 200);
  // EMA with alpha 0.5: 0.5*200 + 0.5*100 = 150.
  EXPECT_EQ(*estimator.Predict(job, true), 150);
}

TEST(EstimatorTest, IgnoresNonPositiveRuntimes) {
  RuntimeEstimator estimator({.min_observations = 1});
  Job job = MakeJob(1, JobType::kUnconstrained, 2, 100);
  estimator.Observe(job, true, 0);
  estimator.Observe(job, true, -5);
  EXPECT_FALSE(estimator.Predict(job, true).has_value());
  EXPECT_EQ(estimator.total_observations(), 0);
}

TEST(EstimatorInLoopTest, LearnedEstimatesOverrideInjectedError) {
  // A stream of identical recurring jobs with a huge injected estimate
  // error (+200%). With learning enabled the later jobs' estimates converge
  // to the true runtime.
  Cluster cluster = MakeUniformCluster(2, 4, 0);
  std::vector<Job> jobs;
  for (int i = 0; i < 10; ++i) {
    Job job = MakeJob(i, JobType::kUnconstrained, 2, 50);
    job.slowdown = 1.0;
    job.estimate_error = 2.0;
    job.submit = i * 60;
    jobs.push_back(job);
  }

  TetriSchedConfig config = TetriSchedConfig::Full();
  config.milp.rel_gap = 0.0;
  SimConfig sim_config;
  sim_config.learn_estimates = true;
  TetriScheduler scheduler(cluster, config);
  Simulator sim(cluster, scheduler, jobs, sim_config);
  SimMetrics metrics = sim.Run();
  for (const JobOutcome& outcome : metrics.outcomes) {
    EXPECT_TRUE(outcome.completed);
  }
  // Without learning, Rayon-facing estimates were 150 s; the final pending
  // job should have been planned with ~50 s. We can't observe the estimate
  // directly from outcomes, but end-to-end makespan confirms no pathological
  // over-reservation: jobs run back to back at their true 50 s runtimes.
  EXPECT_LE(metrics.makespan, jobs.back().submit + 80);
}

TEST(EstimatorInLoopTest, DisabledByDefault) {
  Cluster cluster = MakeUniformCluster(1, 4, 0);
  std::vector<Job> jobs{MakeJob(1, JobType::kUnconstrained, 2, 50)};
  jobs[0].learned_estimate_preferred.reset();
  TetriSchedConfig config = TetriSchedConfig::Full();
  config.milp.rel_gap = 0.0;
  TetriScheduler scheduler(cluster, config);
  Simulator sim(cluster, scheduler, jobs);
  sim.Run();
  // No crash and no learned estimates installed: the default path.
  SUCCEED();
}

TEST(JobTest, LearnedEstimateTakesPrecedence) {
  Job job = MakeJob(1, JobType::kGpu, 2, 100);
  job.estimate_error = 1.0;  // submitted estimate would be 200 / 300
  EXPECT_EQ(job.EstimatedRuntime(true), 200);
  EXPECT_EQ(job.EstimatedRuntime(false), 300);
  job.learned_estimate_preferred = 105;
  job.learned_estimate_fallback = 160;
  EXPECT_EQ(job.EstimatedRuntime(true), 105);
  EXPECT_EQ(job.EstimatedRuntime(false), 160);
}

}  // namespace
}  // namespace tetrisched
