// CLI-behavior tests for the shipped tools (tetrisched_explain,
// tetrisched_ctl, tetrischedd): strict flag handling — unknown flags,
// missing values, and unreadable inputs print usage/diagnostics to stderr
// and exit nonzero. The binaries come from ${CMAKE_BINARY_DIR}/tools via
// the TETRISCHED_TOOLS_DIR compile definition.

#include <sys/wait.h>

#include <cstdio>
#include <string>

#include "gtest/gtest.h"

namespace {

struct RunResult {
  int exit_code = -1;
  std::string stderr_text;
};

// Runs a shell command, discarding stdout and capturing stderr.
RunResult RunRaw(const std::string& raw) {
  std::string command = raw + " 2>&1 1>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  RunResult result;
  if (pipe == nullptr) {
    return result;
  }
  char buffer[512];
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.stderr_text += buffer;
  }
  int status = pclose(pipe);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  }
  return result;
}

RunResult RunTool(const std::string& tool, const std::string& args) {
  return RunRaw(std::string(TETRISCHED_TOOLS_DIR) + "/" + tool + " " + args);
}

TEST(ExplainCliTest, UnknownFlagPrintsUsageAndExits2) {
  RunResult result = RunTool("tetrisched_explain", "--bogus");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("unknown argument: --bogus"),
            std::string::npos);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
}

TEST(ExplainCliTest, FlagMissingValueExits2) {
  RunResult result = RunTool("tetrisched_explain", "--file");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
}

TEST(ExplainCliTest, UnreadableFileExits1) {
  RunResult result =
      RunTool("tetrisched_explain", "--file /nonexistent/provenance.jsonl");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_FALSE(result.stderr_text.empty());
}

TEST(ExplainCliTest, NoInputPrintsUsageAndExits2) {
  RunResult result = RunRaw("env -u TETRISCHED_PROVENANCE_JSONL " +
                            std::string(TETRISCHED_TOOLS_DIR) +
                            "/tetrisched_explain");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
}

TEST(ExplainCliTest, HelpExitsZero) {
  RunResult result = RunTool("tetrisched_explain", "--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
}

TEST(CtlCliTest, UnknownCommandExits2) {
  RunResult result = RunTool("tetrisched_ctl", "frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("unknown command: frobnicate"),
            std::string::npos);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
}

TEST(CtlCliTest, UnknownFlagExits2) {
  RunResult result = RunTool("tetrisched_ctl", "status --bogus");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("unknown or incomplete argument"),
            std::string::npos);
  EXPECT_NE(result.stderr_text.find("usage:"), std::string::npos);
}

TEST(CtlCliTest, MissingEndpointExits2) {
  RunResult result = RunTool("tetrisched_ctl", "status");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("no endpoint"), std::string::npos);
}

TEST(CtlCliTest, UnreadableSpecFileExits1BeforeConnecting) {
  // The bad file must fail fast even though no daemon is listening.
  RunResult result = RunTool(
      "tetrisched_ctl",
      "submit --socket /nonexistent/tetrisched.sock --file /nonexistent.json");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.stderr_text.find("cannot read spec file"),
            std::string::npos);
}

TEST(CtlCliTest, UnreadableStrlFileExits1) {
  RunResult result = RunTool("tetrisched_ctl",
                         "submit --socket /nonexistent/tetrisched.sock "
                         "--strl-file /nonexistent.strl");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.stderr_text.find("cannot read STRL file"),
            std::string::npos);
}

TEST(CtlCliTest, SubmitWithoutJobShapeExits2) {
  RunResult result = RunTool("tetrisched_ctl", "submit --socket /tmp/x.sock");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("submit needs"), std::string::npos);
}

TEST(CtlCliTest, CancelWithoutJobExits2) {
  RunResult result = RunTool("tetrisched_ctl", "cancel --socket /tmp/x.sock");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("cancel needs --job"), std::string::npos);
}

TEST(CtlCliTest, ConnectFailureExits1) {
  RunResult result =
      RunTool("tetrisched_ctl", "status --socket /nonexistent/tetrisched.sock");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.stderr_text.find("cannot connect"), std::string::npos);
}

TEST(CtlCliTest, HelpExitsZero) {
  RunResult result = RunTool("tetrisched_ctl", "--help");
  EXPECT_EQ(result.exit_code, 0);
}

TEST(DaemonCliTest, NoListenerExits2) {
  RunResult result = RunTool("tetrischedd", "");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("no listener"), std::string::npos);
}

TEST(DaemonCliTest, UnknownFlagExits2) {
  RunResult result = RunTool("tetrischedd", "--bogus");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.stderr_text.find("unknown argument: --bogus"),
            std::string::npos);
}

}  // namespace
