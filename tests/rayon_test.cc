// Tests for the Rayon admission-control substrate.

#include <gtest/gtest.h>

#include "src/rayon/rayon.h"

namespace tetrisched {
namespace {

RdlRequest MakeRequest(int k, SimDuration dur, SimTime ws, SimTime we) {
  RdlRequest request;
  request.k = k;
  request.duration = dur;
  request.window_start = ws;
  request.window_end = we;
  return request;
}

TEST(RayonTest, AcceptsWithinCapacity) {
  RayonAdmission rayon(10);
  ReservationDecision d = rayon.Submit(MakeRequest(4, 100, 0, 200));
  ASSERT_TRUE(d.accepted);
  EXPECT_EQ(d.interval.start, 0);
  EXPECT_EQ(d.interval.end, 100);
  EXPECT_EQ(rayon.num_accepted(), 1);
}

TEST(RayonTest, RejectsOversizedGang) {
  RayonAdmission rayon(10);
  EXPECT_FALSE(rayon.Submit(MakeRequest(11, 10, 0, 100)).accepted);
  EXPECT_EQ(rayon.num_rejected(), 1);
}

TEST(RayonTest, RejectsWindowTooShort) {
  RayonAdmission rayon(10);
  EXPECT_FALSE(rayon.Submit(MakeRequest(1, 100, 0, 50)).accepted);
}

TEST(RayonTest, PacksSequentiallyWhenContended) {
  RayonAdmission rayon(10);
  // Two 10-node reservations cannot overlap; second must start after first.
  ReservationDecision first = rayon.Submit(MakeRequest(10, 50, 0, 200));
  ReservationDecision second = rayon.Submit(MakeRequest(10, 50, 0, 200));
  ASSERT_TRUE(first.accepted);
  ASSERT_TRUE(second.accepted);
  EXPECT_EQ(first.interval.start, 0);
  EXPECT_EQ(second.interval.start, 50);
}

TEST(RayonTest, RejectsWhenPlanIsFull) {
  RayonAdmission rayon(10);
  EXPECT_TRUE(rayon.Submit(MakeRequest(10, 100, 0, 100)).accepted);
  EXPECT_FALSE(rayon.Submit(MakeRequest(1, 100, 0, 100)).accepted);
  // But a later window still works.
  EXPECT_TRUE(rayon.Submit(MakeRequest(1, 100, 0, 300)).accepted);
}

TEST(RayonTest, ParallelReservationsShareCapacity) {
  RayonAdmission rayon(10);
  EXPECT_TRUE(rayon.Submit(MakeRequest(5, 100, 0, 100)).accepted);
  EXPECT_TRUE(rayon.Submit(MakeRequest(5, 100, 0, 100)).accepted);
  EXPECT_EQ(rayon.CommittedAt(50), 10);
  EXPECT_EQ(rayon.CommittedAt(150), 0);
}

TEST(RayonTest, FindsGapBetweenReservations) {
  RayonAdmission rayon(10);
  // Occupy [0,50) and [100,150) fully.
  ASSERT_TRUE(rayon.Submit(MakeRequest(10, 50, 0, 50)).accepted);
  ASSERT_TRUE(rayon.Submit(MakeRequest(10, 50, 100, 150)).accepted);
  // A 50-second job fits exactly in the [50,100) hole.
  ReservationDecision d = rayon.Submit(MakeRequest(10, 50, 0, 200));
  ASSERT_TRUE(d.accepted);
  EXPECT_EQ(d.interval.start, 50);
}

TEST(RayonTest, OverestimatedDurationsCauseRejections) {
  // The same workload fits with accurate estimates but overflows the plan
  // when durations are inflated — the root of the paper's over-estimation
  // dynamics (more SLO jobs without reservations).
  RayonAdmission accurate(10);
  RayonAdmission inflated(10);
  int accurate_accepts = 0;
  int inflated_accepts = 0;
  for (int i = 0; i < 10; ++i) {
    if (accurate.Submit(MakeRequest(5, 100, 0, 600)).accepted) {
      ++accurate_accepts;
    }
    if (inflated.Submit(MakeRequest(5, 200, 0, 600)).accepted) {
      ++inflated_accepts;
    }
  }
  EXPECT_GT(accurate_accepts, inflated_accepts);
}

}  // namespace
}  // namespace tetrisched
