// Cycle deadline enforcement tests (DESIGN.md §13): CancelToken plumbing,
// mid-LP cooperative cancellation, deadline-pool donation, the AIMD overload
// controller, the independent plan certifier, and crash-recovery round-trips
// of adapted plan-ahead state.

#include <gtest/gtest.h>

#include <chrono>

#include "src/common/budget.h"
#include "src/common/bytes.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/core/scheduler.h"
#include "src/solver/certify.h"
#include "src/solver/milp.h"
#include "src/solver/simplex.h"

namespace tetrisched {
namespace {

// Sanitizer builds run the solver an order of magnitude slower, so wall-clock
// assertions get a wider allowance there.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr double kWallClockSlop = 2.0;
#else
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr double kWallClockSlop = 2.0;
#else
constexpr double kWallClockSlop = 0.25;
#endif
#else
constexpr double kWallClockSlop = 0.25;
#endif
#endif

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Dense integer packing model whose *root LP alone* far exceeds a
// millisecond-scale deadline: every row touches every variable, so each
// simplex pivot is O(n^2) against the dense basis inverse. Pre-deadline
// enforcement, nothing could interrupt the solve before the first B&B node
// boundary.
MilpModel AdversarialModel(int num_vars, int num_rows, uint64_t seed) {
  Rng rng(seed);
  MilpModel model;
  for (int i = 0; i < num_vars; ++i) {
    model.AddIntegerVar(0.0, 3.0);
    model.AddObjectiveTerm(i, rng.UniformReal(1.0, 10.0));
  }
  for (int r = 0; r < num_rows; ++r) {
    std::vector<LinTerm> row;
    row.reserve(num_vars);
    for (int i = 0; i < num_vars; ++i) {
      row.push_back({i, rng.UniformReal(0.1, 4.0)});
    }
    model.AddConstraint(std::move(row), ConstraintSense::kLessEqual,
                        rng.UniformReal(num_vars * 0.5, num_vars * 2.0));
  }
  return model;
}

TEST(CancelTokenTest, UnarmedNeverExpires) {
  CancelToken token;
  EXPECT_FALSE(token.armed());
  EXPECT_FALSE(token.Expired());
  EXPECT_EQ(token.deadline_nanos(), CancelToken::kUnarmed);
}

TEST(CancelTokenTest, ArmCancelDisarm) {
  CancelToken token;
  token.ArmAfterSeconds(1000.0);
  EXPECT_TRUE(token.armed());
  EXPECT_FALSE(token.Expired());
  EXPECT_GT(token.RemainingSeconds(), 900.0);
  token.Cancel();
  EXPECT_TRUE(token.Expired());
  token.Disarm();
  EXPECT_FALSE(token.armed());
  EXPECT_FALSE(token.Expired());
}

TEST(CancelTokenTest, EarliestDeadlineComposes) {
  CancelToken far;
  CancelToken composed;
  far.ArmAfterSeconds(1000.0);
  composed.ArmAfterSeconds(2000.0);
  if (far.deadline_nanos() < composed.deadline_nanos()) {
    composed.ArmAtNanos(far.deadline_nanos());
  }
  EXPECT_EQ(composed.deadline_nanos(), far.deadline_nanos());
}

TEST(DeadlinePoolTest, EarlyFinisherDonatesTime) {
  // Two equal-weight claimants against a 100 s pool. Sequentially, the first
  // gets ~half; once it releases, the second's share is computed against the
  // remaining outstanding weight and absorbs the donated half.
  DeadlinePool pool(100.0, 2.0);
  double first = pool.AcquireSeconds(1.0, 0.001);
  EXPECT_NEAR(first, 50.0, 1.0);
  pool.Release(1.0);
  double second = pool.AcquireSeconds(1.0, 0.001);
  EXPECT_GT(second, 90.0);
  pool.Release(1.0);
}

TEST(DeadlinePoolTest, FloorAppliesWhenExhausted) {
  DeadlinePool pool(0.0, 4.0);
  EXPECT_DOUBLE_EQ(pool.AcquireSeconds(1.0, 0.005), 0.005);
  pool.Release(1.0);
}

TEST(AimdControllerTest, TrajectoryIsDeterministic) {
  AimdOptions options;
  options.shrink_after = 2;
  options.shrink_factor = 0.5;
  options.restore_after = 2;
  options.restore_step = 0.25;
  options.min_level = 0.0;
  AimdController aimd(options);

  // Two blown cycles -> one shrink (streak resets on adaptation).
  EXPECT_EQ(aimd.Observe(true), 0);
  EXPECT_EQ(aimd.Observe(true), -1);
  EXPECT_DOUBLE_EQ(aimd.level(), 0.5);
  EXPECT_EQ(aimd.Observe(true), 0);
  EXPECT_EQ(aimd.Observe(true), -1);
  EXPECT_DOUBLE_EQ(aimd.level(), 0.25);
  // Healthy cycles restore additively.
  EXPECT_EQ(aimd.Observe(false), 0);
  EXPECT_EQ(aimd.Observe(false), 1);
  EXPECT_DOUBLE_EQ(aimd.level(), 0.5);
  EXPECT_EQ(aimd.Observe(false), 0);
  EXPECT_EQ(aimd.Observe(false), 1);
  EXPECT_DOUBLE_EQ(aimd.level(), 0.75);
  // A blown cycle resets the healthy streak.
  EXPECT_EQ(aimd.Observe(false), 0);
  EXPECT_EQ(aimd.Observe(true), 0);
  EXPECT_EQ(aimd.Observe(false), 0);
  EXPECT_EQ(aimd.Observe(false), 1);
  EXPECT_DOUBLE_EQ(aimd.level(), 1.0);
  // Saturated at 1: healthy cycles are no-ops.
  EXPECT_EQ(aimd.Observe(false), 0);
  EXPECT_EQ(aimd.Observe(false), 0);
  EXPECT_DOUBLE_EQ(aimd.level(), 1.0);
}

TEST(AimdControllerTest, RestoreStateRoundTrips) {
  AimdController aimd;
  aimd.Observe(true);
  AimdController restored;
  restored.RestoreState(0.375, 2, 0);
  EXPECT_DOUBLE_EQ(restored.level(), 0.375);
  EXPECT_EQ(restored.blown_streak(), 2);
  EXPECT_EQ(restored.healthy_streak(), 0);
}

TEST(CancelTest, ExpiredTokenAbandonsLpImmediately) {
  MilpModel model = AdversarialModel(120, 120, 7);
  CancelToken cancel;
  cancel.Cancel();
  LpOptions options;
  options.cancel = &cancel;
  LpResult result = LpSolver(model, options).Solve();
  EXPECT_EQ(result.status, LpStatus::kCancelled);
  EXPECT_TRUE(result.values.empty());
}

TEST(CancelTest, DeadlineHonoredMidLpSingleThread) {
  // The root LP of this model takes far longer than the 50 ms limit, so the
  // solve can only return on time if the deadline fires *inside* the LP.
  MilpModel model = AdversarialModel(400, 400, 11);
  MilpOptions options;
  options.time_limit_seconds = 0.05;
  options.rel_gap = 0.0;
  options.abs_gap = 1e-9;
  options.stall_node_limit = 0;
  options.max_nodes = 1000000;
  options.num_threads = 1;
  auto start = std::chrono::steady_clock::now();
  MilpResult result = MilpSolver(model, options).Solve();
  double elapsed = SecondsSince(start);
  EXPECT_LE(elapsed, 2 * options.time_limit_seconds + kWallClockSlop);
  // Cut off this early the solve reports a limit, never a proven optimum.
  EXPECT_NE(result.status, MilpStatus::kOptimal);
  if (result.HasSolution()) {
    // Whatever incumbent survived the cut must still certify clean.
    CertifyReport report = CertifyPlan(model, result, options);
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST(CancelTest, DeadlineHonoredMidLpParallel) {
  MilpModel model = AdversarialModel(400, 400, 13);
  MilpOptions options;
  options.time_limit_seconds = 0.05;
  options.rel_gap = 0.0;
  options.abs_gap = 1e-9;
  options.stall_node_limit = 0;
  options.max_nodes = 1000000;
  options.num_threads = 4;
  auto start = std::chrono::steady_clock::now();
  MilpResult result = MilpSolver(model, options).Solve();
  double elapsed = SecondsSince(start);
  EXPECT_LE(elapsed, 2 * options.time_limit_seconds + kWallClockSlop);
  EXPECT_NE(result.status, MilpStatus::kOptimal);
  if (result.HasSolution()) {
    CertifyReport report = CertifyPlan(model, result, options);
    EXPECT_TRUE(report.ok) << report.failure;
  }
}

TEST(CancelTest, ExternalTokenCutsLongConfiguredLimit) {
  // An already-expired external token overrides a generous configured limit:
  // the composed deadline is the earlier of the two.
  MilpModel model = AdversarialModel(200, 200, 17);
  CancelToken external;
  external.Cancel();
  MilpOptions options;
  options.time_limit_seconds = 30.0;
  options.cancel = &external;
  auto start = std::chrono::steady_clock::now();
  MilpResult result = MilpSolver(model, options).Solve();
  EXPECT_LE(SecondsSince(start), kWallClockSlop);
  // Only the trivial zero-clamped fallback can exist this early; the solve
  // must say so, and the scheduler treats kNoIncumbent as "no schedule".
  EXPECT_EQ(result.solve_status, SolveStatus::kNoIncumbent);
  if (result.HasSolution()) {
    EXPECT_DOUBLE_EQ(result.objective, 0.0);
  }
}

TEST(CancelTest, DistantTokenPreservesDeterministicSearch) {
  // An armed-but-far token must take the exact same search path as no token:
  // the poll sites only read the clock, never change pivoting or branching.
  MilpModel model = AdversarialModel(40, 20, 23);
  MilpOptions base;
  base.num_threads = 1;
  base.time_limit_seconds = 30.0;
  MilpResult plain = MilpSolver(model, base).Solve();

  CancelToken distant;
  distant.ArmAfterSeconds(3600.0);
  MilpOptions with_token = base;
  with_token.cancel = &distant;
  MilpResult tokened = MilpSolver(model, with_token).Solve();

  EXPECT_EQ(plain.status, tokened.status);
  EXPECT_EQ(plain.nodes, tokened.nodes);
  EXPECT_DOUBLE_EQ(plain.objective, tokened.objective);
  ASSERT_EQ(plain.values.size(), tokened.values.size());
  for (size_t i = 0; i < plain.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.values[i], tokened.values[i]) << "var " << i;
  }
}

TEST(BlandRuleTest, ThresholdIsConfigurableAndCounted) {
  // A zero threshold engages Bland's rule from the first pivot; the
  // activation counter must tick and the solve must still reach the optimum.
  MilpModel model;
  for (int i = 0; i < 6; ++i) {
    model.AddContinuousVar(0.0, 1.0);
    model.AddObjectiveTerm(i, 1.0 + 0.1 * i);
  }
  for (int i = 0; i + 1 < 6; ++i) {
    model.AddConstraint({{i, 1.0}, {i + 1, 1.0}},
                        ConstraintSense::kLessEqual, 1.0);
  }
  Counter* activations =
      GlobalMetrics().GetCounter("tetrisched_solver_bland_activations_total");
  int64_t before = activations->value();
  LpOptions options;
  options.bland_pivot_limit = 0;
  LpResult result = LpSolver(model, options).Solve();
  EXPECT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_GT(activations->value(), before);
}

TEST(CertifyTest, AcceptsHonestIncumbent) {
  MilpModel model = AdversarialModel(30, 10, 29);
  MilpOptions options;
  options.num_threads = 1;
  MilpResult result = MilpSolver(model, options).Solve();
  ASSERT_TRUE(result.HasSolution());
  CertifyReport report = CertifyPlan(model, result, options);
  EXPECT_TRUE(report.ok) << report.failure;
}

TEST(CertifyTest, RejectsCorruptedIncumbent) {
  MilpModel model = AdversarialModel(30, 10, 31);
  MilpOptions options;
  options.num_threads = 1;
  MilpResult result = MilpSolver(model, options).Solve();
  ASSERT_TRUE(result.HasSolution());
  ASSERT_FALSE(result.values.empty());

  // Out-of-bounds / non-integral value.
  MilpResult torn = result;
  torn.values[0] = 97.5;
  EXPECT_FALSE(CertifyPlan(model, torn, options).ok);

  // Objective claim no longer matches the values.
  MilpResult lied = result;
  lied.objective += 1000.0;
  EXPECT_FALSE(CertifyPlan(model, lied, options).ok);

  // Wrong dimension (a stitching bug's signature).
  MilpResult truncated = result;
  truncated.values.pop_back();
  EXPECT_FALSE(CertifyPlan(model, truncated, options).ok);

  // Claimed-optimal status whose bound cannot cover the incumbent.
  MilpResult bogus_gap = result;
  bogus_gap.status = MilpStatus::kOptimal;
  bogus_gap.best_bound = result.objective - 100.0;
  EXPECT_FALSE(CertifyPlan(model, bogus_gap, options).ok);
}

// ---------------------------------------------------------------------------
// Scheduler-level: AIMD adaptation under a blown budget and its crash
// round-trip through the durable-state blob.

Job MakeJob(JobId id, int k, SimDuration runtime, SimTime deadline) {
  Job job;
  job.id = id;
  job.type = JobType::kUnconstrained;
  job.k = k;
  job.submit = 0;
  job.actual_runtime = runtime;
  job.slowdown = 1.0;
  job.deadline = deadline;
  job.slo_class = SloClass::kSloAccepted;
  job.wants_reservation = true;
  return job;
}

TEST(SchedulerBudgetTest, BlownBudgetShrinksPlanAheadAndRoundTrips) {
  Cluster cluster = MakeUniformCluster(2, 4, 1);
  TetriSchedConfig config;
  config.plan_ahead = 96;
  config.quantum = 8;
  // A budget no real cycle can meet: every cycle observes blown and the
  // controller shrinks after each pair of them.
  config.budget.budget_seconds = 1e-9;
  config.budget.aimd.shrink_after = 2;
  TetriScheduler scheduler(cluster, config);
  EXPECT_EQ(scheduler.effective_plan_ahead(), config.plan_ahead);

  Job job = MakeJob(1, 3, 60, 100000);
  std::vector<const Job*> pending{&job};
  int adaptations = 0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    auto decision = scheduler.OnCycle(cycle * 4, pending, {});
    EXPECT_TRUE(decision.stats.budget_blown);
    EXPECT_DOUBLE_EQ(decision.stats.budget_seconds, 1e-9);
    if (decision.stats.plan_ahead_adapted != 0) {
      ++adaptations;
      EXPECT_EQ(decision.stats.plan_ahead_adapted, -1);
    }
  }
  EXPECT_GE(adaptations, 2);
  EXPECT_LT(scheduler.effective_plan_ahead(), config.plan_ahead);
  EXPECT_LT(scheduler.aimd().level(), 1.0);
  // Shrunk windows stay quantum-aligned and at least one quantum wide (NP).
  EXPECT_GE(scheduler.effective_plan_ahead(), config.quantum);
  EXPECT_EQ(scheduler.effective_plan_ahead() % config.quantum, 0);

  // Crash round-trip: a fresh scheduler importing the blob resumes on the
  // adapted trajectory, not the configured defaults.
  std::string blob = scheduler.ExportDurableState();
  TetriScheduler recovered(cluster, config);
  recovered.ImportDurableState(blob);
  EXPECT_DOUBLE_EQ(recovered.aimd().level(), scheduler.aimd().level());
  EXPECT_EQ(recovered.aimd().blown_streak(), scheduler.aimd().blown_streak());
  EXPECT_EQ(recovered.effective_plan_ahead(),
            scheduler.effective_plan_ahead());
  EXPECT_DOUBLE_EQ(recovered.effective_rel_gap(),
                   scheduler.effective_rel_gap());
}

TEST(SchedulerBudgetTest, PreBudgetBlobStillImports) {
  // Blobs written before the budget subsystem end at the warm-start map;
  // importing one must neither warn-discard nor perturb the AIMD state.
  Cluster cluster = MakeUniformCluster(2, 4, 1);
  TetriScheduler scheduler(cluster, TetriSchedConfig::Full());
  ByteWriter writer;
  writer.PutU32(0);  // empty warm-start map, no AIMD suffix
  scheduler.ImportDurableState(writer.str());
  EXPECT_DOUBLE_EQ(scheduler.aimd().level(), 1.0);
  EXPECT_EQ(scheduler.effective_plan_ahead(), scheduler.config().plan_ahead);
}

TEST(SchedulerBudgetTest, ZeroBudgetKeepsSubsystemInert) {
  Cluster cluster = MakeUniformCluster(2, 4, 1);
  TetriSchedConfig config;  // budget_seconds defaults to 0
  TetriScheduler scheduler(cluster, config);
  Job job = MakeJob(1, 3, 60, 100000);
  std::vector<const Job*> pending{&job};
  auto decision = scheduler.OnCycle(0, pending, {});
  EXPECT_FALSE(decision.stats.budget_blown);
  EXPECT_DOUBLE_EQ(decision.stats.budget_seconds, 0.0);
  EXPECT_EQ(decision.stats.plan_ahead_adapted, 0);
  EXPECT_EQ(decision.stats.effective_plan_ahead, config.plan_ahead);
  EXPECT_EQ(scheduler.effective_plan_ahead(), config.plan_ahead);
}

TEST(SchedulerBudgetTest, CertifierLeavesHealthyPlansUntouched) {
  // certify_plans defaults on; a healthy cycle must still schedule and
  // report zero rejects.
  Cluster cluster = MakeUniformCluster(2, 4, 1);
  TetriScheduler scheduler(cluster, TetriSchedConfig::Full());
  ASSERT_TRUE(scheduler.config().certify_plans);
  Job job = MakeJob(1, 3, 60, 100000);
  std::vector<const Job*> pending{&job};
  auto decision = scheduler.OnCycle(0, pending, {});
  EXPECT_EQ(decision.stats.certifier_rejects, 0);
  EXPECT_EQ(decision.start_now.size(), 1u);
  EXPECT_EQ(decision.stats.ladder_rung, 0);
}

}  // namespace
}  // namespace tetrisched
